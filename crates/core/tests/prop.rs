//! Property-based tests on the exploration stages: scheduling and
//! assignment invariants over random specifications.

use memx_core::alloc::{
    assign, assign_with_stats, assign_with_stats_cached, bell_number,
    off_chip_exhaustive_reference, root_lower_bounds, AllocOptions, BoundKind, MemoryKind,
};
use memx_core::cache::EvalCache;
use memx_core::explore::pareto_indices;
use memx_core::{macp, scbd};
use memx_ir::{AccessKind, AppSpec, AppSpecBuilder, BasicGroupId, Placement};
use memx_memlib::{CostBreakdown, MemLibrary, OffChipCatalog, OnChipModel, OnChipSpec};
use proptest::prelude::*;

/// Random schedulable spec: a few groups (mixed placement), a few nests
/// with random chains, and a generous budget.
fn arb_spec() -> impl Strategy<Value = AppSpec> {
    let group = (1u64..5_000, 1u32..24, prop::bool::ANY);
    let access = (0usize..8, prop::bool::ANY);
    let nest = (
        1u64..200,
        prop::collection::vec(access, 1..7),
        prop::bool::ANY,
    );
    (
        prop::collection::vec(group, 1..5),
        prop::collection::vec(nest, 1..4),
    )
        .prop_map(|(groups, nests)| {
            let mut b = AppSpecBuilder::new("prop");
            let ids: Vec<BasicGroupId> = groups
                .iter()
                .enumerate()
                .map(|(i, &(words, width, off))| {
                    let placement = if off && words > 1000 {
                        Placement::OffChip
                    } else {
                        Placement::Any
                    };
                    b.basic_group_placed(format!("g{i}"), words, width, placement)
                        .expect("group params in range")
                })
                .collect();
            for (n, (iters, accesses, chain)) in nests.iter().enumerate() {
                let nid = b.loop_nest(format!("n{n}"), *iters).expect("iters > 0");
                let mut prev = None;
                for &(gidx, write) in accesses {
                    let kind = if write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let a = b
                        .access(nid, ids[gidx % ids.len()], kind)
                        .expect("valid access");
                    if *chain {
                        if let Some(p) = prev {
                            b.depend(nid, p, a).expect("chains are acyclic");
                        }
                    }
                    prev = Some(a);
                }
            }
            // Budget: generous enough for full serialization everywhere
            // (4 cycles covers the worst access duration).
            let budget: u64 = nests
                .iter()
                .map(|(iters, accesses, _)| iters * accesses.len() as u64 * 4)
                .sum::<u64>()
                .max(1);
            b.cycle_budget(budget);
            b.build().expect("constructed spec is valid")
        })
}

/// Small, purely on-chip spec (2–5 groups, mixed widths and minimum
/// port counts, occasionally overlapping accesses): small enough that
/// the true optimal assignment is computable by exhaustive partition
/// enumeration.
fn arb_onchip_spec() -> impl Strategy<Value = AppSpec> {
    let group = (1u64..3_000, 1u32..24, 1u32..3);
    let access = (0usize..8, prop::bool::ANY);
    let nest = (
        1u64..100,
        prop::collection::vec(access, 1..6),
        prop::bool::ANY,
    );
    (
        prop::collection::vec(group, 2..5),
        prop::collection::vec(nest, 1..3),
        // Budget slack factor: 1 forces maximal overlap, 4 none.
        1u64..5,
    )
        .prop_map(|(groups, nests, slack)| {
            let mut b = AppSpecBuilder::new("prop-onchip");
            let ids: Vec<BasicGroupId> = groups
                .iter()
                .enumerate()
                .map(|(i, &(words, width, min_ports))| {
                    b.basic_group_full(format!("g{i}"), words, width, Placement::Any, min_ports)
                        .expect("group params in range")
                })
                .collect();
            for (n, (iters, accesses, chain)) in nests.iter().enumerate() {
                let nid = b.loop_nest(format!("n{n}"), *iters).expect("iters > 0");
                let mut prev = None;
                for &(gidx, write) in accesses {
                    let kind = if write {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    let a = b
                        .access(nid, ids[gidx % ids.len()], kind)
                        .expect("valid access");
                    if *chain {
                        if let Some(p) = prev {
                            b.depend(nid, p, a).expect("chains are acyclic");
                        }
                    }
                    prev = Some(a);
                }
            }
            let budget: u64 = nests
                .iter()
                .map(|(iters, accesses, _)| iters * accesses.len() as u64 * slack)
                .sum::<u64>()
                .max(1);
            b.cycle_budget(budget);
            b.build().expect("constructed spec is valid")
        })
}

/// Off-chip-heavy spec: 2–6 off-chip groups with mixed widths, word
/// counts and access patterns (plus one on-chip sink), small enough
/// that the retired exhaustive set-partition scan is a usable ground
/// truth for the off-chip branch-and-bound.
fn arb_offchip_spec() -> impl Strategy<Value = AppSpec> {
    let group = (1u64..2_000_000, 1u32..24);
    let access = (0usize..8, prop::bool::ANY);
    let nest = (
        1u64..100,
        prop::collection::vec(access, 1..6),
        prop::bool::ANY,
    );
    (
        prop::collection::vec(group, 2..7),
        prop::collection::vec(nest, 1..3),
        // Budget slack factor: 1 forces maximal overlap, 8 none.
        1u64..9,
    )
        .prop_map(|(groups, nests, slack)| {
            let mut b = AppSpecBuilder::new("prop-offchip");
            let ids: Vec<BasicGroupId> = groups
                .iter()
                .enumerate()
                .map(|(i, &(words, width))| {
                    b.basic_group_placed(format!("g{i}"), words, width, Placement::OffChip)
                        .expect("group params in range")
                })
                .collect();
            let sink = b.basic_group("sink", 64, 8).expect("sink params in range");
            for (n, (iters, accesses, chain)) in nests.iter().enumerate() {
                let nid = b.loop_nest(format!("n{n}"), *iters).expect("iters > 0");
                let mut prev = None;
                for &(gidx, burst) in accesses {
                    let a = b
                        .access_full(nid, ids[gidx % ids.len()], AccessKind::Read, 1.0, burst)
                        .expect("valid access");
                    if *chain {
                        if let Some(p) = prev {
                            b.depend(nid, p, a).expect("chains are acyclic");
                        }
                    }
                    prev = Some(a);
                }
                let w = b
                    .access(nid, sink, AccessKind::Write)
                    .expect("valid access");
                if let Some(p) = prev {
                    b.depend(nid, p, w).expect("chains are acyclic");
                }
            }
            // Worst access duration is 4 cycles (off-chip random).
            let budget: u64 = nests
                .iter()
                .map(|(iters, accesses, _)| iters * (accesses.len() as u64 + 1) * slack)
                .sum::<u64>()
                .max(1);
            b.cycle_budget(budget * 4);
            b.build().expect("constructed spec is valid")
        })
}

/// All partitions of `{0..n}` into exactly `k` nonempty blocks.
fn partitions_into_k(n: usize, k: usize) -> Vec<Vec<Vec<usize>>> {
    let mut result = Vec::new();
    let mut current: Vec<Vec<usize>> = Vec::new();
    fn recurse(
        i: usize,
        n: usize,
        k: usize,
        cur: &mut Vec<Vec<usize>>,
        out: &mut Vec<Vec<Vec<usize>>>,
    ) {
        if i == n {
            if cur.len() == k {
                out.push(cur.clone());
            }
            return;
        }
        for b in 0..cur.len() {
            cur[b].push(i);
            recurse(i + 1, n, k, cur, out);
            cur[b].pop();
        }
        if cur.len() < k {
            cur.push(vec![i]);
            recurse(i + 1, n, k, cur, out);
            cur.pop();
        }
    }
    recurse(0, n, k, &mut current, &mut result);
    result
}

/// The true optimal on-chip scalar cost for exactly `k` memories, by
/// exhaustive enumeration against the public cost models (independent
/// of the branch-and-bound under test). `None` when no partition is
/// feasible under the 4-port module limit.
fn exhaustive_on_chip_optimum(
    spec: &AppSpec,
    schedule: &memx_core::scbd::ScbdResult,
    lib: &MemLibrary,
    groups: &[BasicGroupId],
    k: usize,
) -> Option<f64> {
    let time_s = spec.real_time_seconds();
    let mut best: Option<f64> = None;
    for partition in partitions_into_k(groups.len(), k) {
        let mut scalar = 0.0;
        let mut feasible = true;
        for block in &partition {
            let members: Vec<BasicGroupId> = block.iter().map(|&i| groups[i]).collect();
            let overlap = schedule.required_ports(|g| members.contains(&g));
            let min_ports = members
                .iter()
                .map(|&g| spec.group(g).min_ports())
                .max()
                .expect("block not empty");
            let ports = overlap.max(min_ports).max(1);
            if ports > 4 {
                feasible = false;
                break;
            }
            let words: u64 = members.iter().map(|&g| spec.group(g).words()).sum();
            let width = members
                .iter()
                .map(|&g| spec.group(g).bitwidth())
                .max()
                .expect("block not empty");
            let module = OnChipSpec::new(words, width, ports);
            let area = lib.on_chip().area_mm2(&module);
            let accesses: f64 = members
                .iter()
                .map(|&g| {
                    let (r, w) = spec.total_accesses(g);
                    r + w
                })
                .sum();
            let mw = lib.on_chip().energy_pj(&module) * accesses / time_s / 1e9;
            scalar += CostBreakdown::new(area, mw, 0.0).scalar(1.0, 1.0);
        }
        if feasible && best.map(|b| scalar < b).unwrap_or(true) {
            best = Some(scalar);
        }
    }
    best
}

/// Cost points on a small integer grid, so duplicate and dominated
/// points occur often.
fn arb_costs() -> impl Strategy<Value = Vec<CostBreakdown>> {
    prop::collection::vec((0u32..4, 0u32..4, 0u32..4), 1..12).prop_map(|points| {
        points
            .into_iter()
            .map(|(a, p, o)| CostBreakdown::new(f64::from(a), f64::from(p), f64::from(o)))
            .collect()
    })
}

fn strictly_dominates(a: &CostBreakdown, b: &CostBreakdown) -> bool {
    a.dominates(b) && !b.dominates(a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn schedules_fit_their_budgets_and_respect_durations(spec in arb_spec()) {
        let result = scbd::distribute(&spec).expect("generous budget schedules");
        prop_assert!(result.used_cycles <= spec.cycle_budget());
        for body in &result.bodies {
            let nest = spec.nest(body.nest);
            // Total occupancy equals the sum of access durations.
            let occupancy: usize = body.busy_slots().iter().map(|s| s.occupants.len()).sum();
            let durations: u64 = nest
                .accesses()
                .iter()
                .map(|a| {
                    let off = spec.group(a.group()).placement() == Placement::OffChip;
                    memx_memlib::timing::access_cycles(off, a.is_burst())
                })
                .sum();
            prop_assert_eq!(occupancy as u64, durations);
        }
    }

    #[test]
    fn generous_budgets_reach_zero_pressure(spec in arb_spec()) {
        let result = scbd::distribute(&spec).expect("schedulable");
        for body in &result.bodies {
            prop_assert_eq!(body.pressure(), 0.0, "body {} still pressured", body.name);
        }
    }

    #[test]
    fn macp_is_a_lower_bound_for_scheduling(spec in arb_spec()) {
        let report = macp::analyze(&spec);
        let result = scbd::distribute(&spec).expect("schedulable");
        prop_assert!(result.used_cycles >= report.total_cycles);
    }

    #[test]
    fn assignment_partitions_all_accessed_groups(spec in arb_spec()) {
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let org = assign(&spec, &schedule, &lib, &AllocOptions::default())
            .expect("assignable with free allocation");
        let mut seen = vec![false; spec.basic_groups().len()];
        for mem in &org.memories {
            prop_assert!(!mem.groups.is_empty());
            for g in &mem.groups {
                prop_assert!(!seen[g.index()], "group assigned twice");
                seen[g.index()] = true;
            }
            // Memory dimensions cover the assigned groups.
            let words: u64 = mem.groups.iter().map(|&g| spec.group(g).words()).sum();
            prop_assert_eq!(words, mem.words);
            let width = mem
                .groups
                .iter()
                .map(|&g| spec.group(g).bitwidth())
                .max()
                .expect("non-empty");
            prop_assert_eq!(width, mem.width);
        }
        for (i, g) in spec.basic_groups().iter().enumerate() {
            let (r, w) = spec.total_accesses(g.id());
            if r + w > 0.0 {
                prop_assert!(seen[i], "accessed group {} unassigned", g.name());
            }
        }
    }

    #[test]
    fn off_chip_groups_land_in_off_chip_memories(spec in arb_spec()) {
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let org = assign(&spec, &schedule, &lib, &AllocOptions::default())
            .expect("assignable");
        for mem in &org.memories {
            for &g in &mem.groups {
                let off_group = spec.group(g).placement() == Placement::OffChip;
                let off_mem = matches!(mem.kind, MemoryKind::OffChip(_));
                prop_assert_eq!(off_group, off_mem);
            }
        }
    }

    #[test]
    fn parallel_assignment_is_bit_identical_to_serial(spec in arb_spec()) {
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let serial = assign(&spec, &schedule, &lib, &AllocOptions {
            workers: 1,
            ..AllocOptions::default()
        }).expect("assignable");
        for workers in [2usize, 8] {
            let parallel = assign(&spec, &schedule, &lib, &AllocOptions {
                workers,
                ..AllocOptions::default()
            }).expect("assignable");
            prop_assert_eq!(&serial, &parallel, "workers={}", workers);
        }
    }

    #[test]
    fn fan_exhaustion_stays_bit_identical_across_workers_on_chip(
        spec in arb_onchip_spec(),
        node_limit in 1u64..600,
    ) {
        // Under an exhausted node budget the fan harness must still
        // reproduce the serial solver exactly: the seed subtree runs
        // first with the full budget and the remainder is split by the
        // canonical prefix order, so whatever the budget cuts off is
        // cut off identically for every worker count.
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let serial = assign(&spec, &schedule, &lib, &AllocOptions {
            workers: 1,
            node_limit,
            ..AllocOptions::default()
        });
        for workers in [2usize, 8] {
            let fanned = assign(&spec, &schedule, &lib, &AllocOptions {
                workers,
                node_limit,
                ..AllocOptions::default()
            });
            prop_assert_eq!(&serial, &fanned, "workers={}", workers);
        }
    }

    #[test]
    fn fan_exhaustion_stays_bit_identical_across_workers_off_chip(
        spec in arb_offchip_spec(),
        node_limit in 1u64..600,
    ) {
        // Same determinism-under-exhaustion contract for the off-chip
        // partition search (2–6 off-chip groups plus the on-chip sink).
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let serial = assign(&spec, &schedule, &lib, &AllocOptions {
            workers: 1,
            node_limit,
            ..AllocOptions::default()
        });
        for workers in [2usize, 8] {
            let fanned = assign(&spec, &schedule, &lib, &AllocOptions {
                workers,
                node_limit,
                ..AllocOptions::default()
            });
            prop_assert_eq!(&serial, &fanned, "workers={}", workers);
        }
    }

    #[test]
    fn pairwise_bound_is_admissible_and_dominates_solo(spec in arb_onchip_spec()) {
        // The two properties that make BoundKind::Pairwise sound and
        // worthwhile, against a ground truth computed by exhaustive
        // partition enumeration (independent of the search under test):
        //   admissibility: pairwise root bound <= true optimal cost;
        //   dominance:     pairwise root bound >= solo root bound.
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let options = AllocOptions::default();
        let groups: Vec<BasicGroupId> = spec
            .basic_groups()
            .iter()
            .filter(|g| {
                let (r, w) = spec.total_accesses(g.id());
                r + w > 0.0
            })
            .map(|g| g.id())
            .collect();
        prop_assert!(!groups.is_empty(), "every nest has at least one access");
        for k in 1..=groups.len() {
            let (solo, pairwise) = root_lower_bounds(&spec, &schedule, &lib, &options, k as u32)
                .expect("weights valid")
                .expect("on-chip groups exist");
            prop_assert!(
                solo <= pairwise + 1e-12,
                "k={}: solo bound {} above pairwise {}", k, solo, pairwise
            );
            if let Some(optimum) =
                exhaustive_on_chip_optimum(&spec, &schedule, &lib, &groups, k)
            {
                prop_assert!(
                    pairwise <= optimum * (1.0 + 1e-9) + 1e-9,
                    "k={}: pairwise bound {} exceeds true optimum {}", k, pairwise, optimum
                );
            }
        }
    }

    #[test]
    fn exact_search_matches_exhaustive_optimum_for_both_bounds(spec in arb_onchip_spec()) {
        // With an unexhausted node budget the branch-and-bound is exact:
        // whatever bound prunes it, the returned on-chip cost must equal
        // the exhaustively-enumerated optimum.
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let groups: Vec<BasicGroupId> = spec
            .basic_groups()
            .iter()
            .filter(|g| {
                let (r, w) = spec.total_accesses(g.id());
                r + w > 0.0
            })
            .map(|g| g.id())
            .collect();
        prop_assert!(!groups.is_empty(), "every nest has at least one access");
        for k in 1..=groups.len() {
            let optimum = exhaustive_on_chip_optimum(&spec, &schedule, &lib, &groups, k);
            for bound in [BoundKind::Solo, BoundKind::Pairwise] {
                let result = assign(&spec, &schedule, &lib, &AllocOptions {
                    on_chip_memories: Some(k as u32),
                    bound,
                    ..AllocOptions::default()
                });
                match (&optimum, result) {
                    (Some(opt), Ok(org)) => {
                        let scalar = org.cost.scalar(1.0, 1.0);
                        prop_assert!(
                            (scalar - opt).abs() <= opt.abs() * 1e-9 + 1e-9,
                            "k={} bound={:?}: search {} vs optimum {}", k, bound, scalar, opt
                        );
                    }
                    (None, Err(_)) => {}
                    (opt, res) => {
                        prop_assert!(
                            false,
                            "k={} bound={:?}: feasibility disagrees ({:?} vs {:?})",
                            k, bound, opt, res.map(|o| o.cost)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn off_chip_bb_matches_the_exhaustive_scan(spec in arb_offchip_spec()) {
        // The off-chip branch-and-bound must reproduce the retired
        // exhaustive streaming scan exactly — same optimum, same
        // canonical-first tie-break, same block order — while expanding
        // no more nodes than the Bell-number partition space the scan
        // had to stream through, for every worker count.
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let reference = off_chip_exhaustive_reference(&spec, &schedule, &lib);
        let n = spec
            .basic_groups()
            .iter()
            .filter(|g| {
                let (r, w) = spec.total_accesses(g.id());
                g.placement() == Placement::OffChip && r + w > 0.0
            })
            .count();
        for workers in [1usize, 2, 8] {
            let result = assign_with_stats(&spec, &schedule, &lib, &AllocOptions {
                workers,
                ..AllocOptions::default()
            });
            match (&reference, result) {
                (Ok((want, _)), Ok((org, stats))) => {
                    let got: Vec<_> = org
                        .memories
                        .iter()
                        .filter(|m| matches!(m.kind, MemoryKind::OffChip(_)))
                        .collect();
                    prop_assert_eq!(got.len(), want.len(), "workers={}", workers);
                    for (g, w) in got.iter().zip(want) {
                        prop_assert_eq!(*g, w, "workers={}", workers);
                    }
                    prop_assert!(
                        stats.off_chip_bb_nodes <= bell_number(n),
                        "workers={}: {} nodes > Bell({}) = {}",
                        workers, stats.off_chip_bb_nodes, n, bell_number(n)
                    );
                    prop_assert_eq!(
                        stats.off_chip_exhaustive_partitions,
                        bell_number(n),
                        "workers={}", workers
                    );
                }
                (Err(want), Err(got)) => prop_assert_eq!(&got, want, "workers={}", workers),
                (want, got) => prop_assert!(
                    false,
                    "workers={}: feasibility disagrees ({:?} vs {:?})",
                    workers, want, got
                ),
            }
        }
    }

    #[test]
    fn custom_model_search_stays_exact(
        spec in arb_onchip_spec(),
        scale_idx in 0usize..4,
    ) {
        let scale = [0.25f64, 0.5, 2.0, 4.0][scale_idx];
        // The pairwise floor is derived from the active OnChipModel: for
        // any area scaling of the technology library the bound must stay
        // admissible, i.e. the branch-and-bound still lands on the
        // exhaustively-enumerated optimum computed with that library.
        // (Reading the default calibration constants instead — the old
        // behavior — over-prunes any library with cheaper cells.)
        let base = OnChipModel::default_07um();
        let lib = MemLibrary::new(
            base.clone()
                .with_area_per_bit_mm2(base.area_per_bit_mm2() * scale)
                .with_module_overhead_mm2(base.module_overhead_mm2() * scale)
                .with_port_area_factor(base.port_area_factor() * scale),
            OffChipCatalog::default_edo(),
        );
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let groups: Vec<BasicGroupId> = spec
            .basic_groups()
            .iter()
            .filter(|g| {
                let (r, w) = spec.total_accesses(g.id());
                r + w > 0.0
            })
            .map(|g| g.id())
            .collect();
        prop_assert!(!groups.is_empty(), "every nest has at least one access");
        for k in 1..=groups.len() {
            let optimum = exhaustive_on_chip_optimum(&spec, &schedule, &lib, &groups, k);
            let result = assign(&spec, &schedule, &lib, &AllocOptions {
                on_chip_memories: Some(k as u32),
                ..AllocOptions::default()
            });
            match (&optimum, result) {
                (Some(opt), Ok(org)) => {
                    let scalar = org.cost.scalar(1.0, 1.0);
                    prop_assert!(
                        (scalar - opt).abs() <= opt.abs() * 1e-9 + 1e-9,
                        "k={} scale={}: search {} vs optimum {}", k, scale, scalar, opt
                    );
                }
                (None, Err(_)) => {}
                (opt, res) => prop_assert!(
                    false,
                    "k={} scale={}: feasibility disagrees ({:?} vs {:?})",
                    k, scale, opt, res.map(|o| o.cost)
                ),
            }
        }
    }

    #[test]
    fn alloc_cache_hits_are_bit_identical_to_recompute(spec in arb_spec()) {
        // A phase-2 cache hit must be indistinguishable from running the
        // solver: same organization (cost float bits included, via the
        // derived equality) and the same replayed AllocStats — for every
        // worker count, since worker count is deliberately excluded from
        // the key, and for both bound kinds, which key separately.
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        for bound in [BoundKind::Solo, BoundKind::Pairwise] {
            let serial = AllocOptions { workers: 1, bound, ..AllocOptions::default() };
            let (want_org, want_stats) =
                assign_with_stats(&spec, &schedule, &lib, &serial).expect("assignable");

            let dir = std::env::temp_dir().join(format!(
                "memx-prop-alloc-{}-{}",
                std::process::id(),
                CASE.fetch_add(1, Ordering::Relaxed),
            ));
            std::fs::remove_dir_all(&dir).ok();
            let cache = EvalCache::open(&dir).expect("cache opens");

            // Cold pass populates the entry and must already match the
            // uncached run exactly.
            let (cold_org, cold_stats) =
                assign_with_stats_cached(&spec, &schedule, &lib, &serial, Some(&cache))
                    .expect("assignable");
            prop_assert_eq!(&cold_org, &want_org, "cold bound={:?}", bound);
            prop_assert_eq!(&cold_stats, &want_stats, "cold bound={:?}", bound);
            prop_assert_eq!(cache.stats().alloc_misses, 1);
            prop_assert_eq!(cache.stats().alloc_hits, 0);

            for workers in [1usize, 2, 8] {
                let options = AllocOptions { workers, bound, ..AllocOptions::default() };
                let (org, stats) =
                    assign_with_stats_cached(&spec, &schedule, &lib, &options, Some(&cache))
                        .expect("assignable");
                prop_assert_eq!(&org, &want_org, "workers={} bound={:?}", workers, bound);
                prop_assert_eq!(&stats, &want_stats, "workers={} bound={:?}", workers, bound);
            }
            prop_assert_eq!(cache.stats().alloc_hits, 3, "bound={:?}", bound);
            prop_assert_eq!(cache.stats().alloc_misses, 1, "bound={:?}", bound);
            prop_assert_eq!(cache.stats().write_failures(), 0);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn pareto_front_keeps_no_dominated_point(costs in arb_costs()) {
        let front = pareto_indices(&costs);
        prop_assert!(!front.is_empty(), "a non-empty set has a non-empty front");
        for &i in &front {
            for (j, other) in costs.iter().enumerate() {
                if j != i {
                    prop_assert!(
                        !strictly_dominates(other, &costs[i]),
                        "kept point {} is dominated by {}", i, j
                    );
                }
            }
        }
        // Every dropped point is strictly dominated by someone.
        for i in 0..costs.len() {
            if !front.contains(&i) {
                prop_assert!(
                    costs.iter().enumerate().any(|(j, o)| j != i && strictly_dominates(o, &costs[i])),
                    "point {} dropped without a dominator", i
                );
            }
        }
    }

    #[test]
    fn pareto_front_keeps_all_duplicates(costs in arb_costs()) {
        // §4.6 semantics: identical-cost points are distinct design
        // options and must survive (or fall) together.
        let front = pareto_indices(&costs);
        for i in 0..costs.len() {
            for j in 0..costs.len() {
                if costs[i] == costs[j] {
                    prop_assert_eq!(
                        front.contains(&i),
                        front.contains(&j),
                        "duplicates {} and {} split", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn pareto_front_is_permutation_invariant(costs in arb_costs(), rot in 0usize..12) {
        // Rotate + reverse: an arbitrary-ish permutation that needs no
        // extra randomness.
        let rot = rot % costs.len();
        let mut permuted: Vec<CostBreakdown> = costs[rot..]
            .iter()
            .chain(&costs[..rot])
            .copied()
            .collect();
        permuted.reverse();
        let kept = |cs: &[CostBreakdown]| {
            let mut v: Vec<(u64, u64, u64)> = pareto_indices(cs)
                .into_iter()
                .map(|i| {
                    (
                        cs[i].on_chip_area_mm2.to_bits(),
                        cs[i].on_chip_power_mw.to_bits(),
                        cs[i].off_chip_power_mw.to_bits(),
                    )
                })
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(kept(&costs), kept(&permuted));
    }

    #[test]
    fn organization_cost_is_sum_of_memory_costs(spec in arb_spec()) {
        let lib = MemLibrary::default_07um();
        let schedule = scbd::distribute(&spec).expect("schedulable");
        let org = assign(&spec, &schedule, &lib, &AllocOptions::default())
            .expect("assignable");
        let total: memx_memlib::CostBreakdown = org.memories.iter().map(|m| m.cost).sum();
        prop_assert!((total.on_chip_area_mm2 - org.cost.on_chip_area_mm2).abs() < 1e-9);
        prop_assert!((total.total_power_mw() - org.cost.total_power_mw()).abs() < 1e-9);
    }
}
