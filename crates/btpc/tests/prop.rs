//! Property-based tests on the codec: round trips, lossy error bounds,
//! entropy-coder correctness on arbitrary streams.

use memx_btpc::{AdaptiveHuffman, BitReader, BitWriter, CodecConfig, Decoder, Encoder, Image};
use memx_profile::ProfileRegistry;
use proptest::prelude::*;

/// Arbitrary image: random dimensions and pixel content.
fn arb_image() -> impl Strategy<Value = Image> {
    (1usize..48, 1usize..48).prop_flat_map(|(w, h)| {
        prop::collection::vec(0u16..=255, w * h)
            .prop_map(move |pixels| Image::from_pixels(w, h, pixels))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lossless_round_trip_arbitrary_images(img in arb_image()) {
        let cfg = CodecConfig::lossless();
        let encoded = Encoder::new(cfg).encode(&img).expect("encode succeeds");
        let decoded = Decoder::new(cfg).decode(&encoded).expect("decode succeeds");
        prop_assert_eq!(decoded, img);
    }

    #[test]
    fn lossy_error_bounded_by_half_quantization_step(
        img in arb_image(),
        q in 2u16..32,
    ) {
        // Closed-loop prediction: every pixel's reconstruction error is
        // at most q/2 (the quantizer rounds to the nearest multiple).
        let cfg = CodecConfig::lossy(q);
        let encoded = Encoder::new(cfg).encode(&img).expect("encode succeeds");
        let decoded = Decoder::new(cfg).decode(&encoded).expect("decode succeeds");
        let bound = i32::from(q / 2 + q % 2);
        for (a, b) in decoded.pixels().iter().zip(img.pixels()) {
            let err = (i32::from(*a) - i32::from(*b)).abs();
            prop_assert!(err <= bound, "error {err} exceeds bound {bound} (q={q})");
        }
    }

    #[test]
    fn larger_quantization_never_grows_the_stream(img in arb_image()) {
        let fine = Encoder::new(CodecConfig::lossy(2)).encode(&img).expect("encode");
        let coarse = Encoder::new(CodecConfig::lossy(16)).encode(&img).expect("encode");
        prop_assert!(coarse.bit_len() <= fine.bit_len());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn huffman_round_trips_arbitrary_streams(
        symbols in 2usize..64,
        period in 1u32..64,
        stream in prop::collection::vec(0u16..64, 1..300),
    ) {
        let stream: Vec<u16> = stream
            .into_iter()
            .map(|s| s % symbols as u16)
            .collect();
        let reg = ProfileRegistry::new();
        let mut enc = AdaptiveHuffman::new(0, symbols, period, &reg);
        let mut dec = AdaptiveHuffman::new(1, symbols, period, &reg);
        let mut w = BitWriter::new();
        for &s in &stream {
            enc.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &stream {
            prop_assert_eq!(dec.decode(&mut r).expect("in-sync decode"), s);
        }
    }

    #[test]
    fn bitio_round_trips_arbitrary_values(
        values in prop::collection::vec((0u32..=u32::MAX, 1u32..=32), 0..100),
    ) {
        let mut w = BitWriter::new();
        for &(v, bits) in &values {
            w.put_bits(v & ((1u64 << bits) - 1) as u32, bits);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, bits) in &values {
            let masked = v & ((1u64 << bits) - 1) as u32;
            prop_assert_eq!(r.get_bits(bits).expect("stream long enough"), masked);
        }
    }

    #[test]
    fn classification_is_total_and_consistent(
        neighbors in prop::collection::vec(0u16..=255, 1..=4),
    ) {
        let pattern = memx_btpc::classify(&neighbors);
        let prediction = memx_btpc::predict(pattern, &neighbors);
        let max = *neighbors.iter().max().expect("non-empty");
        let min = *neighbors.iter().min().expect("non-empty");
        // Every predictor interpolates: the prediction stays within the
        // neighbour range.
        prop_assert!(prediction >= min && prediction <= max);
        prop_assert!(pattern.context_index() < 6);
    }
}
