//! # memx-btpc — Binary Tree Predictive Coding demonstrator
//!
//! A complete implementation of the paper's demonstrator application:
//! the **Binary Tree Predictive Coder** (Robinson, *IEEE Trans. Image
//! Processing* 1997), a lossless/lossy image compression algorithm based
//! on multiresolution.
//!
//! The image is successively split into a high-resolution part and a
//! low-resolution quarter-image on a quincunx lattice (the *binary tree*);
//! the high-resolution pixels are predicted from neighbouring
//! already-coded pixels, the neighbourhood is classified into one of six
//! patterns, and the prediction error is entropy-coded with **six
//! adaptive Huffman coders**, one per pattern. For lossy compression the
//! errors are quantized inside the prediction loop (closed loop).
//!
//! The implementation is *instrumented*: the important arrays (`image`,
//! `pyr`, `ridge`, the per-coder Huffman tables, the LUTs and the output
//! buffer — the paper's 18 basic groups) are [`memx_profile::TrackedArray`]s,
//! so a real encode yields the per-array access counts that drive the
//! system-level exploration in `memx-core`.
//!
//! # Example
//!
//! ```
//! use memx_btpc::{Encoder, Decoder, Image, CodecConfig};
//!
//! # fn main() -> Result<(), memx_btpc::CodecError> {
//! let img = Image::synthetic_gradient(64, 64);
//! let encoder = Encoder::new(CodecConfig::lossless());
//! let encoded = encoder.encode(&img)?;
//! let decoded = Decoder::new(CodecConfig::lossless()).decode(&encoded)?;
//! assert_eq!(decoded, img); // lossless round trip
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod bitio;
mod codec;
mod huffman;
mod image;
pub mod pgm;
mod predict;
mod pyramid;
pub mod spec;

pub use bitio::{BitReader, BitWriter, ReadBitsError};
pub use codec::{CodecConfig, CodecError, Decoder, Encoded, Encoder};
pub use huffman::AdaptiveHuffman;
pub use image::Image;
pub use predict::{classify, predict, NeighborPattern};
pub use pyramid::{level_count, new_pixels, on_lattice, Level};
