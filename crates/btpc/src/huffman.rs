//! Adaptive Huffman entropy coder (periodic-rebuild canonical variant).
//!
//! BTPC uses six adaptive Huffman coders, one per neighbourhood pattern.
//! This implementation adapts by maintaining per-symbol frequency counts
//! and rebuilding a canonical Huffman code every `period` symbols;
//! encoder and decoder perform identical updates at identical points, so
//! no side information is transmitted. The frequency and code tables are
//! [`TrackedArray`]s: they are basic groups of the application (the
//! paper's 20-bit-wide arrays are exactly these frequency counters).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use memx_profile::{ProfileRegistry, TrackedArray};

use crate::{BitReader, BitWriter, ReadBitsError};

/// Maximum canonical code length; frequencies are rescaled until the
/// optimal code fits.
const MAX_CODE_LEN: u32 = 16;

/// One adaptive Huffman coder over a fixed symbol alphabet.
///
/// # Example
///
/// ```
/// use memx_btpc::{AdaptiveHuffman, BitWriter, BitReader};
/// use memx_profile::ProfileRegistry;
///
/// let registry = ProfileRegistry::new();
/// let mut enc = AdaptiveHuffman::new(0, 16, 8, &registry);
/// let mut dec = AdaptiveHuffman::new(0, 16, 8, &registry);
/// let mut w = BitWriter::new();
/// for s in [3u16, 3, 3, 7, 3] {
///     enc.encode(s, &mut w);
/// }
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// for s in [3u16, 3, 3, 7, 3] {
///     assert_eq!(dec.decode(&mut r).unwrap(), s);
/// }
/// ```
#[derive(Debug)]
pub struct AdaptiveHuffman {
    symbols: usize,
    period: u32,
    since_rebuild: u32,
    /// Per-symbol frequency counts (a tracked basic group, 20-bit wide in
    /// the paper's terms).
    freq: TrackedArray<u32>,
    /// Per-symbol canonical code table: `code | (len << 24)` (tracked).
    code: TrackedArray<u32>,
    /// Symbols sorted by (length, symbol) — the canonical order the
    /// decoder walks. Rebuilt together with `code`.
    canon_order: Vec<u16>,
    /// `first_code[l]` = canonical code value of the first symbol of
    /// length `l`; `first_index[l]` = its rank in `canon_order`.
    first_code: Vec<u32>,
    first_index: Vec<u32>,
}

impl AdaptiveHuffman {
    /// Creates a coder for `symbols` distinct symbols, rebuilding its
    /// code every `period` coded symbols. Tables register with `registry`
    /// as `huff_freq_<context>` and `huff_code_<context>`.
    ///
    /// # Panics
    ///
    /// Panics if `symbols` is 0 or exceeds `u16::MAX`, or `period` is 0.
    pub fn new(context: usize, symbols: usize, period: u32, registry: &ProfileRegistry) -> Self {
        assert!(
            symbols > 0 && symbols <= usize::from(u16::MAX),
            "bad alphabet size"
        );
        assert!(period > 0, "rebuild period must be positive");
        let mut freq = registry.array(&format!("huff_freq_{context}"), symbols);
        freq.fill_untracked(&vec![1u32; symbols]);
        let code = registry.array(&format!("huff_code_{context}"), symbols);
        let mut coder = AdaptiveHuffman {
            symbols,
            period,
            since_rebuild: 0,
            freq,
            code,
            canon_order: Vec::new(),
            first_code: Vec::new(),
            first_index: Vec::new(),
        };
        coder.rebuild();
        coder
    }

    /// Number of symbols in the alphabet.
    pub fn symbol_count(&self) -> usize {
        self.symbols
    }

    /// Encodes `symbol` into `out` and adapts.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` is outside the alphabet.
    pub fn encode(&mut self, symbol: u16, out: &mut BitWriter) {
        let s = usize::from(symbol);
        assert!(s < self.symbols, "symbol outside alphabet");
        let entry = self.code.read(s);
        let len = entry >> 24;
        let code = entry & 0x00FF_FFFF;
        out.put_bits(code, len);
        self.adapt(s);
    }

    /// Decodes one symbol from `input` and adapts.
    ///
    /// # Errors
    ///
    /// Returns an error if the bitstream ends mid-symbol.
    pub fn decode(&mut self, input: &mut BitReader<'_>) -> Result<u16, ReadBitsError> {
        let mut code = 0u32;
        let mut len = 0usize;
        loop {
            code = (code << 1) | u32::from(input.get_bit()?);
            len += 1;
            if len > MAX_CODE_LEN as usize {
                // Corrupt stream: no canonical code is this long.
                return Err(ReadBitsError {
                    position: input.position(),
                });
            }
            // Within length `len`, canonical codes occupy a contiguous
            // range starting at first_code[len].
            let count_at_len = self.count_at_len(len);
            if count_at_len > 0 {
                let first = self.first_code[len];
                if code >= first && code - first < count_at_len {
                    let rank = self.first_index[len] + (code - first);
                    let symbol = self.canon_order[rank as usize];
                    // Mirror the encoder's table read for faithful access
                    // counting.
                    let _ = self.code.read(usize::from(symbol));
                    self.adapt(usize::from(symbol));
                    return Ok(symbol);
                }
            }
        }
    }

    /// Number of symbols whose canonical code has length `len`.
    fn count_at_len(&self, len: usize) -> u32 {
        if len + 1 < self.first_index.len() {
            self.first_index[len + 1] - self.first_index[len]
        } else if len < self.first_index.len() {
            self.canon_order.len() as u32 - self.first_index[len]
        } else {
            0
        }
    }

    /// Bumps the symbol's frequency and periodically rebuilds the code.
    fn adapt(&mut self, symbol: usize) {
        let f = self.freq.read(symbol);
        self.freq.write(symbol, f + 1);
        self.since_rebuild += 1;
        if self.since_rebuild >= self.period {
            self.since_rebuild = 0;
            self.rebuild();
        }
    }

    /// Rebuilds the canonical code table from the current frequencies.
    fn rebuild(&mut self) {
        let mut freqs: Vec<u64> = (0..self.symbols)
            .map(|s| u64::from(self.freq.read(s)))
            .collect();
        let mut lens = huffman_code_lengths(&freqs);
        while lens.iter().any(|&l| l > MAX_CODE_LEN) {
            // Flatten the distribution until the optimal code fits in
            // MAX_CODE_LEN bits; encoder and decoder rescale identically.
            for (s, f) in freqs.iter_mut().enumerate() {
                *f = *f / 2 + 1;
                self.freq.write(s, *f as u32);
            }
            lens = huffman_code_lengths(&freqs);
        }

        // Canonical assignment: sort symbols by (length, symbol).
        let mut order: Vec<u16> = (0..self.symbols as u16).collect();
        order.sort_by_key(|&s| (lens[usize::from(s)], s));
        let max_len = lens.iter().copied().max().unwrap_or(1) as usize;
        let mut first_code = vec![0u32; max_len + 2];
        let mut first_index = vec![0u32; max_len + 2];
        let mut next_code = 0u32;
        let mut idx = 0u32;
        let mut prev_len = 0u32;
        for &s in &order {
            let l = lens[usize::from(s)];
            if l > prev_len {
                next_code <<= l - prev_len;
                for fill in (prev_len + 1)..=l {
                    let shifted = next_code >> (l - fill);
                    first_code[fill as usize] = shifted;
                    first_index[fill as usize] = idx;
                }
                prev_len = l;
            }
            self.code.write(usize::from(s), next_code | (l << 24));
            next_code += 1;
            idx += 1;
        }
        // Lengths above the maximum used must report "no symbols":
        // close the boundary so count_at_len(max_len) sees the total.
        for entry in first_index.iter_mut().skip(prev_len as usize + 1) {
            *entry = idx;
        }
        self.canon_order = order;
        self.first_code = first_code;
        self.first_index = first_index;
    }
}

/// Computes optimal Huffman code lengths for the given frequencies
/// (all must be positive), with deterministic tie-breaking.
fn huffman_code_lengths(freqs: &[u64]) -> Vec<u32> {
    let n = freqs.len();
    if n == 1 {
        return vec![1];
    }
    // Node arena: leaves 0..n, internal nodes appended.
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = freqs
        .iter()
        .enumerate()
        .map(|(i, &f)| Reverse((f, i)))
        .collect();
    let mut weights: Vec<u64> = freqs.to_vec();
    while heap.len() > 1 {
        let Reverse((fa, a)) = heap.pop().expect("heap size checked");
        let Reverse((fb, b)) = heap.pop().expect("heap size checked");
        let node = weights.len();
        weights.push(fa + fb);
        parent.push(usize::MAX);
        parent[a] = node;
        parent[b] = node;
        heap.push(Reverse((fa + fb, node)));
    }
    (0..n)
        .map(|leaf| {
            let mut depth = 0u32;
            let mut node = leaf;
            while parent[node] != usize::MAX {
                node = parent[node];
                depth += 1;
            }
            depth.max(1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ProfileRegistry {
        ProfileRegistry::new()
    }

    #[test]
    fn code_lengths_satisfy_kraft() {
        let freqs = [50u64, 20, 10, 10, 5, 5];
        let lens = huffman_code_lengths(&freqs);
        let kraft: f64 = lens.iter().map(|&l| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
    }

    #[test]
    fn frequent_symbols_get_short_codes() {
        let freqs = [1000u64, 1, 1, 1, 1, 1, 1, 1];
        let lens = huffman_code_lengths(&freqs);
        assert!(lens[0] < lens[7]);
    }

    #[test]
    fn single_symbol_alphabet_has_one_bit_code() {
        assert_eq!(huffman_code_lengths(&[42]), vec![1]);
    }

    #[test]
    fn round_trip_skewed_stream() {
        let reg = registry();
        let mut enc = AdaptiveHuffman::new(0, 64, 16, &reg);
        let mut dec = AdaptiveHuffman::new(0, 64, 16, &reg);
        let stream: Vec<u16> = (0..500).map(|i| if i % 7 == 0 { 13 } else { 2 }).collect();
        let mut w = BitWriter::new();
        for &s in &stream {
            enc.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn round_trip_all_symbols() {
        let reg = registry();
        let mut enc = AdaptiveHuffman::new(1, 32, 8, &reg);
        let mut dec = AdaptiveHuffman::new(1, 32, 8, &reg);
        let stream: Vec<u16> = (0..32u16).cycle().take(200).collect();
        let mut w = BitWriter::new();
        for &s in &stream {
            enc.encode(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &s in &stream {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn adaptation_compresses_skewed_streams() {
        let reg = registry();
        let mut enc = AdaptiveHuffman::new(2, 256, 32, &reg);
        let mut w = BitWriter::new();
        for _ in 0..2000 {
            enc.encode(0, &mut w);
        }
        // A fully skewed stream must approach 1 bit/symbol.
        assert!(w.bit_len() < 2600, "bits = {}", w.bit_len());
    }

    #[test]
    fn truncated_stream_reports_error() {
        let reg = registry();
        let mut dec = AdaptiveHuffman::new(3, 256, 32, &reg);
        let mut r = BitReader::new(&[]);
        assert!(dec.decode(&mut r).is_err());
    }

    #[test]
    fn tables_are_tracked() {
        let reg = registry();
        let mut enc = AdaptiveHuffman::new(4, 16, 4, &reg);
        let mut w = BitWriter::new();
        enc.encode(5, &mut w);
        let p = reg.snapshot();
        let (fr, fw) = p.counts("huff_freq_4").unwrap();
        assert!(fr > 0.0 && fw > 0.0);
        let (cr, _cw) = p.counts("huff_code_4").unwrap();
        assert!(cr > 0.0);
    }

    #[test]
    #[should_panic(expected = "symbol outside alphabet")]
    fn encode_out_of_alphabet_panics() {
        let reg = registry();
        let mut enc = AdaptiveHuffman::new(5, 8, 4, &reg);
        enc.encode(8, &mut BitWriter::new());
    }
}
