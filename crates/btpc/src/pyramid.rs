//! The quincunx binary-tree lattice underlying BTPC.
//!
//! BTPC successively splits the image into a high-resolution part and a
//! low-resolution part holding *half* the pixels of the previous level —
//! the "binary tree". Level 0 contains every pixel; each level keeps half
//! of the previous one, alternating between square lattices and diamond
//! (quincunx) lattices:
//!
//! * even level `2k`: pixels with `x` and `y` multiples of `2^k`;
//! * odd level `2k+1`: the subset of level `2k` whose scaled coordinate
//!   sum `(x/2^k + y/2^k)` is even.
//!
//! The pixels *new* at level `l` (in level `l` but not `l+1`) are
//! predicted from their four nearest level-`l+1` neighbours: diagonal
//! neighbours when `l` is odd, orthogonal when `l` is even.

/// One level of the binary-tree pyramid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Level(pub u8);

impl Level {
    /// Coordinate spacing of this level's lattice: points lie on
    /// multiples of `2^(level/2)` (odd levels additionally constrain the
    /// parity of the scaled coordinate sum).
    pub fn spacing(self) -> usize {
        1 << (self.0 / 2)
    }

    /// `true` when this level is a diamond (quincunx) lattice.
    pub fn is_diamond(self) -> bool {
        !self.0.is_multiple_of(2)
    }

    /// The four neighbour offsets used to predict pixels *new at* this
    /// level from the next-coarser lattice: diagonal at distance
    /// `spacing` for odd levels, orthogonal for even levels.
    ///
    /// Offsets are returned as axis pairs: `[a0, a1, b0, b1]` with `a`
    /// and `b` the two opposing pairs (the classification in
    /// [`crate::classify`] relies on this pairing).
    pub fn neighbor_offsets(self) -> [(isize, isize); 4] {
        let d = self.spacing() as isize;
        if self.is_diamond() {
            // New at an odd level: both scaled coordinates odd; coarser
            // lattice neighbours sit diagonally.
            [(-d, -d), (d, d), (-d, d), (d, -d)]
        } else {
            // New at an even level: coarser (diamond) neighbours sit
            // orthogonally.
            [(-d, 0), (d, 0), (0, -d), (0, d)]
        }
    }
}

/// `true` if `(x, y)` belongs to the lattice of `level`.
pub fn on_lattice(level: Level, x: usize, y: usize) -> bool {
    let k = level.0 / 2;
    let s = 1usize << k;
    if !x.is_multiple_of(s) || !y.is_multiple_of(s) {
        return false;
    }
    if level.is_diamond() {
        ((x >> k) + (y >> k)).is_multiple_of(2)
    } else {
        true
    }
}

/// Number of levels used for a `width x height` image: the coarsest
/// level's lattice spacing does not exceed half the smaller dimension, so
/// the raw-coded top level stays small while every level keeps enough
/// neighbours for prediction.
pub fn level_count(width: usize, height: usize) -> u8 {
    let min_dim = width.min(height);
    let mut levels = 0u8;
    while (1usize << (levels.div_ceil(2) + 1)) <= min_dim {
        levels += 1;
    }
    levels
}

/// The pixels new at `level`: on the `level` lattice but not on the
/// `level + 1` lattice, in raster order.
pub fn new_pixels(level: Level, width: usize, height: usize) -> Vec<(usize, usize)> {
    let step = level.spacing();
    let next = Level(level.0 + 1);
    let mut out = Vec::new();
    for y in (0..height).step_by(step) {
        for x in (0..width).step_by(step) {
            if on_lattice(level, x, y) && !on_lattice(next, x, y) {
                out.push((x, y));
            }
        }
    }
    out
}

/// The pixels of the coarsest lattice (raw-coded by the encoder), in
/// raster order.
pub fn top_pixels(level: Level, width: usize, height: usize) -> Vec<(usize, usize)> {
    let step = level.spacing();
    let mut out = Vec::new();
    for y in (0..height).step_by(step) {
        for x in (0..width).step_by(step) {
            if on_lattice(level, x, y) {
                out.push((x, y));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_zero_contains_everything() {
        for (x, y) in [(0, 0), (1, 0), (3, 5), (7, 7)] {
            assert!(on_lattice(Level(0), x, y));
        }
    }

    #[test]
    fn level_one_is_checkerboard() {
        assert!(on_lattice(Level(1), 0, 0));
        assert!(!on_lattice(Level(1), 1, 0));
        assert!(on_lattice(Level(1), 1, 1));
        assert!(on_lattice(Level(1), 2, 0));
    }

    #[test]
    fn lattices_are_nested() {
        for l in 0..8u8 {
            for y in 0..32 {
                for x in 0..32 {
                    if on_lattice(Level(l + 1), x, y) {
                        assert!(
                            on_lattice(Level(l), x, y),
                            "level {} not nested at ({x},{y})",
                            l + 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn each_level_halves_the_pixel_count() {
        let (w, h) = (32, 32);
        for l in 0..6u8 {
            let count = |lv: u8| {
                let mut c = 0;
                for y in 0..h {
                    for x in 0..w {
                        if on_lattice(Level(lv), x, y) {
                            c += 1;
                        }
                    }
                }
                c
            };
            assert_eq!(count(l), 2 * count(l + 1), "level {l}");
        }
    }

    #[test]
    fn new_pixels_partition_levels() {
        let (w, h) = (16, 16);
        let levels = level_count(w, h);
        let mut total = top_pixels(Level(levels), w, h).len();
        for l in 0..levels {
            total += new_pixels(Level(l), w, h).len();
        }
        assert_eq!(total, w * h);
    }

    #[test]
    fn neighbors_of_new_pixels_are_on_coarser_lattice() {
        let (w, h) = (32, 32);
        for l in 0..6u8 {
            let level = Level(l);
            for (x, y) in new_pixels(level, w, h) {
                for (dx, dy) in level.neighbor_offsets() {
                    let nx = x as isize + dx;
                    let ny = y as isize + dy;
                    if nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h {
                        assert!(
                            on_lattice(Level(l + 1), nx as usize, ny as usize),
                            "level {l} pixel ({x},{y}) neighbour ({nx},{ny})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn level_count_grows_with_size() {
        assert!(level_count(16, 16) < level_count(64, 64));
        let l = level_count(64, 64);
        // Coarsest spacing at most half the min dimension.
        assert!(Level(l).spacing() <= 32);
    }

    #[test]
    fn interior_new_pixels_have_four_neighbors() {
        let (w, h) = (16, 16);
        let level = Level(2);
        let d = level.spacing();
        for (x, y) in new_pixels(level, w, h) {
            if x >= d && y >= d && x + d < w && y + d < h {
                let n = level
                    .neighbor_offsets()
                    .iter()
                    .filter(|(dx, dy)| {
                        let nx = x as isize + dx;
                        let ny = y as isize + dy;
                        nx >= 0 && ny >= 0 && (nx as usize) < w && (ny as usize) < h
                    })
                    .count();
                assert_eq!(n, 4);
            }
        }
    }
}
