//! Minimal PGM (portable graymap) reader/writer, so the codec can be
//! exercised on real images without external dependencies.
//!
//! Supports the binary `P5` format with 8-bit samples (the common
//! variant) and the ASCII `P2` format for reading.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::Image;

/// Error parsing or writing a PGM stream.
#[derive(Debug)]
pub enum PgmError {
    /// The stream is not a supported PGM variant.
    BadMagic {
        /// The two magic bytes found.
        found: String,
    },
    /// Header fields missing or malformed.
    BadHeader {
        /// Description of the malformed field.
        what: String,
    },
    /// Pixel data ended early.
    Truncated,
    /// Only 8-bit images are supported.
    UnsupportedDepth {
        /// The stream's `maxval`.
        maxval: u32,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for PgmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PgmError::BadMagic { found } => write!(f, "not a PGM stream (magic `{found}`)"),
            PgmError::BadHeader { what } => write!(f, "malformed PGM header: {what}"),
            PgmError::Truncated => write!(f, "PGM pixel data truncated"),
            PgmError::UnsupportedDepth { maxval } => {
                write!(f, "unsupported PGM maxval {maxval} (only 8-bit supported)")
            }
            PgmError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl Error for PgmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PgmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PgmError {
    fn from(e: std::io::Error) -> Self {
        PgmError::Io(e)
    }
}

/// Reads whitespace/comment-separated header tokens.
fn read_tokens(bytes: &[u8], count: usize) -> Result<(Vec<u32>, usize), PgmError> {
    let mut tokens = Vec::with_capacity(count);
    let mut pos = 0usize;
    while tokens.len() < count {
        // Skip whitespace and comments.
        while pos < bytes.len() {
            match bytes[pos] {
                b'#' => {
                    while pos < bytes.len() && bytes[pos] != b'\n' {
                        pos += 1;
                    }
                }
                c if c.is_ascii_whitespace() => pos += 1,
                _ => break,
            }
        }
        let start = pos;
        while pos < bytes.len() && bytes[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == start {
            return Err(PgmError::BadHeader {
                what: "expected integer".to_owned(),
            });
        }
        let text = std::str::from_utf8(&bytes[start..pos]).expect("digits are utf-8");
        tokens.push(text.parse().map_err(|_| PgmError::BadHeader {
            what: format!("integer `{text}` out of range"),
        })?);
    }
    Ok((tokens, pos))
}

/// Parses a PGM image from a byte slice (`P5` binary or `P2` ASCII).
///
/// # Errors
///
/// Returns a [`PgmError`] on malformed or unsupported input.
pub fn decode_pgm(bytes: &[u8]) -> Result<Image, PgmError> {
    if bytes.len() < 2 {
        return Err(PgmError::BadMagic {
            found: String::new(),
        });
    }
    let magic = &bytes[..2];
    let binary = match magic {
        b"P5" => true,
        b"P2" => false,
        other => {
            return Err(PgmError::BadMagic {
                found: String::from_utf8_lossy(other).into_owned(),
            })
        }
    };
    let (header, mut pos) = read_tokens(&bytes[2..], 3)?;
    pos += 2;
    let (width, height, maxval) = (header[0] as usize, header[1] as usize, header[2]);
    if width == 0 || height == 0 {
        return Err(PgmError::BadHeader {
            what: "zero dimension".to_owned(),
        });
    }
    if maxval == 0 || maxval > 255 {
        return Err(PgmError::UnsupportedDepth { maxval });
    }
    let mut pixels = Vec::with_capacity(width * height);
    if binary {
        // Exactly one whitespace byte separates header and raster.
        pos += 1;
        let raster = bytes
            .get(pos..pos + width * height)
            .ok_or(PgmError::Truncated)?;
        pixels.extend(raster.iter().map(|&b| u16::from(b)));
    } else {
        let (values, _) =
            read_tokens(&bytes[pos..], width * height).map_err(|_| PgmError::Truncated)?;
        pixels.extend(values.iter().map(|&v| v.min(255) as u16));
    }
    Ok(Image::from_pixels(width, height, pixels))
}

/// Reads a PGM image from a buffered reader.
///
/// # Errors
///
/// See [`decode_pgm`].
pub fn read_pgm<R: BufRead>(mut reader: R) -> Result<Image, PgmError> {
    let mut bytes = Vec::new();
    reader.read_to_end(&mut bytes)?;
    decode_pgm(&bytes)
}

/// Serializes an image as binary `P5` PGM.
pub fn encode_pgm(image: &Image) -> Vec<u8> {
    let mut out = format!("P5\n{} {}\n255\n", image.width(), image.height()).into_bytes();
    out.extend(image.pixels().iter().map(|&p| p.min(255) as u8));
    out
}

/// Writes an image as binary `P5` PGM.
///
/// # Errors
///
/// Returns an error if the writer fails.
pub fn write_pgm<W: Write>(mut writer: W, image: &Image) -> Result<(), PgmError> {
    writer.write_all(&encode_pgm(image))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_round_trip() {
        let img = Image::synthetic_natural(17, 9, 3);
        let bytes = encode_pgm(&img);
        let back = decode_pgm(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn ascii_parsing_with_comments() {
        let text = b"P2\n# a comment\n3 2\n255\n0 128 255\n10 20 30\n";
        let img = decode_pgm(text).unwrap();
        assert_eq!((img.width(), img.height()), (3, 2));
        assert_eq!(img.get(1, 0), 128);
        assert_eq!(img.get(2, 1), 30);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            decode_pgm(b"P6\n1 1\n255\n\0\0\0"),
            Err(PgmError::BadMagic { .. })
        ));
        assert!(matches!(decode_pgm(b""), Err(PgmError::BadMagic { .. })));
    }

    #[test]
    fn truncated_raster_rejected() {
        let mut bytes = encode_pgm(&Image::synthetic_gradient(8, 8));
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(decode_pgm(&bytes), Err(PgmError::Truncated)));
    }

    #[test]
    fn sixteen_bit_depth_rejected() {
        assert!(matches!(
            decode_pgm(b"P5\n1 1\n65535\n\0\0"),
            Err(PgmError::UnsupportedDepth { maxval: 65535 })
        ));
    }

    #[test]
    fn reader_writer_round_trip() {
        let img = Image::synthetic_noise(12, 5, 8);
        let mut buf = Vec::new();
        write_pgm(&mut buf, &img).unwrap();
        let back = read_pgm(std::io::Cursor::new(buf)).unwrap();
        assert_eq!(back, img);
    }
}
