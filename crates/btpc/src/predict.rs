//! Neighbourhood-pattern classification and pattern-based predictors.
//!
//! BTPC predicts each new pixel from its (up to) four already-decoded
//! neighbours. The neighbourhood is classified into one of **six
//! patterns**; each pattern selects both a predictor and one of the six
//! adaptive Huffman coders. A 2-bit *ridge* code (the edge orientation:
//! none / axis A / axis B / cross) is stored per pixel in the `ridge`
//! array — the paper's 2-bit-wide 1 M-word basic group.

use std::fmt;

/// The six neighbourhood patterns of the coder.
///
/// Neighbours come as two opposing pairs (see
/// [`crate::Level::neighbor_offsets`]): pair *A* = `(n[0], n[1])`,
/// pair *B* = `(n[2], n[3])`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeighborPattern {
    /// All neighbours nearly equal.
    Flat,
    /// Small activity, no dominant direction.
    Smooth,
    /// Edge along axis A (pair A nearly equal, pair B differs).
    EdgeA,
    /// Edge along axis B.
    EdgeB,
    /// The two pairs disagree with each other (cross/ridge pattern).
    Ridge,
    /// High activity without structure.
    Textured,
}

impl NeighborPattern {
    /// Index of the Huffman coder used for this pattern (0..6).
    pub fn context_index(self) -> usize {
        match self {
            NeighborPattern::Flat => 0,
            NeighborPattern::Smooth => 1,
            NeighborPattern::EdgeA => 2,
            NeighborPattern::EdgeB => 3,
            NeighborPattern::Ridge => 4,
            NeighborPattern::Textured => 5,
        }
    }

    /// The 2-bit ridge/orientation code stored in the `ridge` array:
    /// 0 = no edge, 1 = edge along A, 2 = edge along B, 3 = cross.
    pub fn ridge_code(self) -> u8 {
        match self {
            NeighborPattern::Flat | NeighborPattern::Smooth => 0,
            NeighborPattern::EdgeA => 1,
            NeighborPattern::EdgeB => 2,
            NeighborPattern::Ridge | NeighborPattern::Textured => 3,
        }
    }

    /// All six patterns, in context order.
    pub fn all() -> [NeighborPattern; 6] {
        [
            NeighborPattern::Flat,
            NeighborPattern::Smooth,
            NeighborPattern::EdgeA,
            NeighborPattern::EdgeB,
            NeighborPattern::Ridge,
            NeighborPattern::Textured,
        ]
    }
}

impl fmt::Display for NeighborPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NeighborPattern::Flat => "flat",
            NeighborPattern::Smooth => "smooth",
            NeighborPattern::EdgeA => "edge-a",
            NeighborPattern::EdgeB => "edge-b",
            NeighborPattern::Ridge => "ridge",
            NeighborPattern::Textured => "textured",
        };
        f.write_str(s)
    }
}

/// Classifies a neighbourhood into one of the six patterns.
///
/// `neighbors` holds the available neighbour values as two opposing
/// pairs `[a0, a1, b0, b1]`; at image borders fewer values are available
/// and only the activity classes are distinguished.
///
/// # Panics
///
/// Panics if `neighbors` is empty or holds more than 4 values.
pub fn classify(neighbors: &[u16]) -> NeighborPattern {
    assert!(
        !neighbors.is_empty() && neighbors.len() <= 4,
        "1 to 4 neighbours required"
    );
    let max = i32::from(*neighbors.iter().max().expect("non-empty"));
    let min = i32::from(*neighbors.iter().min().expect("non-empty"));
    let range = max - min;
    if range <= 2 {
        return NeighborPattern::Flat;
    }
    if range <= 10 {
        return NeighborPattern::Smooth;
    }
    if neighbors.len() < 4 {
        // Border pixels: no full pairs, fall back on activity.
        return if range > 48 {
            NeighborPattern::Textured
        } else {
            NeighborPattern::Smooth
        };
    }
    let a0 = i32::from(neighbors[0]);
    let a1 = i32::from(neighbors[1]);
    let b0 = i32::from(neighbors[2]);
    let b1 = i32::from(neighbors[3]);
    let da = (a0 - a1).abs();
    let db = (b0 - b1).abs();
    let cross = ((a0 + a1) - (b0 + b1)).abs() / 2;
    // An edge along one axis leaves that pair coherent while the other
    // pair (or the cross difference) is large.
    if da <= db / 2 && db > 10 {
        return NeighborPattern::EdgeA;
    }
    if db <= da / 2 && da > 10 {
        return NeighborPattern::EdgeB;
    }
    if cross > da.max(db) {
        return NeighborPattern::Ridge;
    }
    NeighborPattern::Textured
}

/// Predicts a pixel value for the given pattern and neighbours (same
/// slice passed to [`classify`]).
///
/// # Panics
///
/// Panics if `neighbors` is empty or holds more than 4 values.
pub fn predict(pattern: NeighborPattern, neighbors: &[u16]) -> u16 {
    assert!(
        !neighbors.is_empty() && neighbors.len() <= 4,
        "1 to 4 neighbours required"
    );
    let mean = |vals: &[u16]| -> u16 {
        let sum: u32 = vals.iter().map(|&v| u32::from(v)).sum();
        ((sum + vals.len() as u32 / 2) / vals.len() as u32) as u16
    };
    if neighbors.len() < 4 {
        return mean(neighbors);
    }
    match pattern {
        // Along an edge the coherent pair is the better predictor.
        NeighborPattern::EdgeA => mean(&neighbors[0..2]),
        NeighborPattern::EdgeB => mean(&neighbors[2..4]),
        // For a ridge the median (mean of the two middle values) rejects
        // the outlier pair.
        NeighborPattern::Ridge => {
            let mut v = [neighbors[0], neighbors[1], neighbors[2], neighbors[3]];
            v.sort_unstable();
            mean(&v[1..3])
        }
        NeighborPattern::Flat | NeighborPattern::Smooth | NeighborPattern::Textured => {
            mean(neighbors)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_neighbourhood_is_flat() {
        assert_eq!(classify(&[100, 100, 101, 100]), NeighborPattern::Flat);
    }

    #[test]
    fn gentle_slope_is_smooth() {
        assert_eq!(classify(&[100, 104, 102, 106]), NeighborPattern::Smooth);
    }

    #[test]
    fn edge_along_a_detected() {
        // Pair A coherent (50, 52); pair B split (10, 90).
        assert_eq!(classify(&[50, 52, 10, 90]), NeighborPattern::EdgeA);
    }

    #[test]
    fn edge_along_b_detected() {
        assert_eq!(classify(&[10, 90, 50, 52]), NeighborPattern::EdgeB);
    }

    #[test]
    fn ridge_detected_when_pairs_disagree() {
        // Both pairs internally coherent but far apart.
        assert_eq!(classify(&[20, 22, 200, 204]), NeighborPattern::Ridge);
    }

    #[test]
    fn chaotic_neighbourhood_is_textured() {
        assert_eq!(classify(&[0, 200, 180, 20]), NeighborPattern::Textured);
    }

    #[test]
    fn border_classification_uses_activity_only() {
        assert_eq!(classify(&[10, 12]), NeighborPattern::Flat);
        assert_eq!(classify(&[10, 200]), NeighborPattern::Textured);
        assert_eq!(classify(&[10, 30]), NeighborPattern::Smooth);
    }

    #[test]
    #[should_panic(expected = "1 to 4 neighbours")]
    fn empty_neighbourhood_panics() {
        classify(&[]);
    }

    #[test]
    fn prediction_tracks_the_edge_pair() {
        let n = [50, 52, 10, 90];
        assert_eq!(predict(NeighborPattern::EdgeA, &n), 51);
        assert_eq!(predict(NeighborPattern::EdgeB, &n), 50);
    }

    #[test]
    fn ridge_prediction_is_median_like() {
        let n = [20, 22, 200, 204];
        // middle two of (20, 22, 200, 204) -> (22 + 200 + 1) / 2 = 111.
        assert_eq!(predict(NeighborPattern::Ridge, &n), 111);
    }

    #[test]
    fn mean_prediction_rounds() {
        assert_eq!(predict(NeighborPattern::Flat, &[1, 2]), 2);
        assert_eq!(predict(NeighborPattern::Smooth, &[10, 20, 30, 40]), 25);
    }

    #[test]
    fn every_pattern_has_unique_context() {
        let mut seen = [false; 6];
        for p in NeighborPattern::all() {
            let i = p.context_index();
            assert!(!seen[i], "duplicate context {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ridge_codes_fit_two_bits() {
        for p in NeighborPattern::all() {
            assert!(p.ridge_code() < 4);
        }
    }

    #[test]
    fn prediction_stays_in_pixel_range() {
        for pattern in NeighborPattern::all() {
            let p = predict(pattern, &[0, 255, 255, 0]);
            assert!(p <= 255);
        }
    }
}
