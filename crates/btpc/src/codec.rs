//! The BTPC encoder and decoder.
//!
//! Both sides walk the binary-tree pyramid from the coarsest level down:
//! the coarsest lattice is raw-coded; every other pixel is predicted from
//! its four already-coded neighbours, the neighbourhood pattern selects
//! one of the six adaptive Huffman coders, and the (optionally quantized)
//! prediction error is entropy-coded. Prediction is *closed-loop*: both
//! sides predict from reconstructed values, so lossy streams stay in
//! sync.
//!
//! The important arrays are tracked (see the crate docs): `image`, `pyr`,
//! `ridge`, the per-context `huff_freq_*`/`huff_code_*` tables, the
//! `zigzag`/`unzig`/`quant` LUTs and the `bitbuf` output buffer — the 18
//! basic groups of the paper's §3.

use std::error::Error;
use std::fmt;

use memx_profile::ProfileRegistry;

use crate::pyramid::top_pixels;
use crate::{
    classify, level_count, new_pixels, predict, AdaptiveHuffman, BitReader, BitWriter, Image,
    Level, ReadBitsError,
};

/// Number of neighbourhood patterns / Huffman contexts.
pub(crate) const CONTEXTS: usize = 6;
/// Prediction errors live in \[-255, 255\]; zigzag maps them to 0..511.
const ERROR_SYMBOLS: usize = 511;

/// Codec parameters shared by encoder and decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecConfig {
    /// Quantization step for prediction errors; 1 means lossless.
    pub quant_step: u16,
    /// Adaptive-Huffman rebuild period in symbols.
    pub rebuild_period: u32,
}

impl CodecConfig {
    /// Lossless configuration (quantization step 1).
    pub fn lossless() -> Self {
        CodecConfig {
            quant_step: 1,
            rebuild_period: 256,
        }
    }

    /// Lossy configuration with the given quantization step (>= 2).
    ///
    /// # Panics
    ///
    /// Panics if `quant_step < 2` (use [`CodecConfig::lossless`]).
    pub fn lossy(quant_step: u16) -> Self {
        assert!(quant_step >= 2, "lossy quantization step must be >= 2");
        CodecConfig {
            quant_step,
            rebuild_period: 256,
        }
    }

    /// `true` when the configuration is lossless.
    pub fn is_lossless(&self) -> bool {
        self.quant_step == 1
    }
}

impl Default for CodecConfig {
    fn default() -> Self {
        Self::lossless()
    }
}

/// An encoded image: dimensions, the configuration used, and the
/// entropy-coded payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Encoded {
    width: usize,
    height: usize,
    config: CodecConfig,
    bytes: Vec<u8>,
}

impl Encoded {
    /// Source image width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Source image height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The configuration the stream was produced with.
    pub fn config(&self) -> &CodecConfig {
        &self.config
    }

    /// The compressed payload.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Compressed size in bits.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8
    }

    /// Compression ratio versus 8-bit raw storage.
    pub fn compression_ratio(&self) -> f64 {
        (self.width * self.height * 8) as f64 / self.bit_len().max(1) as f64
    }

    /// Serializes the stream to a self-contained byte container
    /// (`BTPC` magic, dimensions, configuration, payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.bytes.len() + 20);
        out.extend_from_slice(b"BTPC");
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.height as u32).to_le_bytes());
        out.extend_from_slice(&self.config.quant_step.to_le_bytes());
        out.extend_from_slice(&self.config.rebuild_period.to_le_bytes());
        out.extend_from_slice(&self.bytes);
        out
    }

    /// Parses a container produced by [`Encoded::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptStream`] if the container is
    /// malformed.
    pub fn from_bytes(bytes: &[u8]) -> Result<Encoded, CodecError> {
        let corrupt = |position| CodecError::CorruptStream { position };
        if bytes.len() < 18 || &bytes[..4] != b"BTPC" {
            return Err(corrupt(0));
        }
        let u32_at =
            |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("length checked"));
        let width = u32_at(4) as usize;
        let height = u32_at(8) as usize;
        let quant_step = u16::from_le_bytes(bytes[12..14].try_into().expect("length checked"));
        let rebuild_period = u32_at(14);
        if width == 0 || height == 0 || quant_step == 0 || rebuild_period == 0 {
            return Err(corrupt(4 * 8));
        }
        Ok(Encoded {
            width,
            height,
            config: CodecConfig {
                quant_step,
                rebuild_period,
            },
            bytes: bytes[18..].to_vec(),
        })
    }
}

/// Errors produced by the codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The bitstream ended prematurely or is corrupt.
    Truncated(ReadBitsError),
    /// A decoded value fell outside the 8-bit pixel range.
    CorruptStream {
        /// Bit position at which the corruption was detected.
        position: usize,
    },
    /// Decoder configuration differs from the one in the stream.
    ConfigMismatch,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated(e) => write!(f, "truncated stream: {e}"),
            CodecError::CorruptStream { position } => {
                write!(f, "corrupt stream near bit {position}")
            }
            CodecError::ConfigMismatch => write!(f, "decoder configuration mismatch"),
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::Truncated(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReadBitsError> for CodecError {
    fn from(e: ReadBitsError) -> Self {
        CodecError::Truncated(e)
    }
}

/// Working state shared by encode and decode: the tracked arrays and the
/// six Huffman coders.
struct Pipeline {
    pyr: memx_profile::TrackedArray<u16>,
    ridge: memx_profile::TrackedArray<u8>,
    zigzag: memx_profile::TrackedArray<u16>,
    unzig: memx_profile::TrackedArray<u16>,
    quant: memx_profile::TrackedArray<u16>,
    coders: Vec<AdaptiveHuffman>,
    width: usize,
    height: usize,
    quant_step: i32,
}

impl Pipeline {
    fn new(width: usize, height: usize, config: &CodecConfig, registry: &ProfileRegistry) -> Self {
        let mut zigzag = registry.array("zigzag", ERROR_SYMBOLS);
        let mut unzig = registry.array("unzig", ERROR_SYMBOLS);
        let mut quant = registry.array("quant", ERROR_SYMBOLS);
        let q = i32::from(config.quant_step);
        let mut zz = vec![0u16; ERROR_SYMBOLS];
        let mut uz = vec![0u16; ERROR_SYMBOLS];
        let mut qt = vec![0u16; ERROR_SYMBOLS];
        for idx in 0..ERROR_SYMBOLS {
            let e = idx as i32 - 255; // error value
            let sym = if e >= 0 { 2 * e } else { -2 * e - 1 } as u16;
            zz[idx] = sym;
            uz[usize::from(sym)] = idx as u16;
            // Nearest-multiple quantization index, biased away from zero.
            let k = if e >= 0 {
                (e + q / 2) / q
            } else {
                -((-e + q / 2) / q)
            };
            qt[idx] = (k + 255) as u16;
        }
        zigzag.fill_untracked(&zz);
        unzig.fill_untracked(&uz);
        quant.fill_untracked(&qt);
        let coders = (0..CONTEXTS)
            .map(|c| AdaptiveHuffman::new(c, ERROR_SYMBOLS, config.rebuild_period, registry))
            .collect();
        Pipeline {
            pyr: registry.array("pyr", width * height),
            ridge: registry.array("ridge", width * height),
            zigzag,
            unzig,
            quant,
            coders,
            width,
            height,
            quant_step: q,
        }
    }

    #[inline]
    fn index(&self, x: usize, y: usize) -> usize {
        y * self.width + x
    }

    /// Gathers the available neighbours of `(x, y)` for `level`:
    /// reconstructed values from `pyr` and ridge codes from `ridge`.
    fn gather(&self, level: Level, x: usize, y: usize) -> (Vec<u16>, u32) {
        let mut values = Vec::with_capacity(4);
        let mut edgy = 0u32;
        for (dx, dy) in level.neighbor_offsets() {
            let nx = x as isize + dx;
            let ny = y as isize + dy;
            if nx >= 0 && ny >= 0 && (nx as usize) < self.width && (ny as usize) < self.height {
                let i = self.index(nx as usize, ny as usize);
                values.push(self.pyr.read(i));
                if self.ridge.read(i) != 0 {
                    edgy += 1;
                }
            }
        }
        (values, edgy)
    }

    /// Context selection: the neighbourhood pattern, refined by the ridge
    /// codes of the neighbours (a smooth patch surrounded by edges codes
    /// as textured). Returns (context index, pattern ridge code,
    /// predicted value).
    fn model(&self, level: Level, x: usize, y: usize) -> (usize, u8, u16) {
        let (values, edgy) = self.gather(level, x, y);
        let pattern = classify(&values);
        let mut ctx = pattern.context_index();
        if ctx == 1 && edgy >= 3 {
            ctx = 5; // smooth-but-near-edges behaves like texture
        }
        (ctx, pattern.ridge_code(), predict(pattern, &values))
    }
}

/// The BTPC encoder.
///
/// See the [crate-level example](crate) for typical use.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: CodecConfig,
}

impl Encoder {
    /// Creates an encoder with the given configuration.
    pub fn new(config: CodecConfig) -> Self {
        Encoder { config }
    }

    /// Encodes an image, instrumenting a private registry (use
    /// [`Encoder::encode_with_registry`] to collect the profile).
    ///
    /// # Errors
    ///
    /// Currently infallible in practice; returns `Result` for forward
    /// compatibility with streaming back ends.
    pub fn encode(&self, image: &Image) -> Result<Encoded, CodecError> {
        self.encode_with_registry(image, &ProfileRegistry::new())
    }

    /// Encodes an image, counting array accesses in `registry` (the
    /// paper's automatic instrumentation, §4.1).
    ///
    /// # Errors
    ///
    /// See [`Encoder::encode`].
    pub fn encode_with_registry(
        &self,
        image: &Image,
        registry: &ProfileRegistry,
    ) -> Result<Encoded, CodecError> {
        let (w, h) = (image.width(), image.height());
        let mut tracked_image = registry.array::<u16>("image", w * h);
        tracked_image.fill_untracked(image.pixels());
        let mut p = Pipeline::new(w, h, &self.config, registry);
        let mut out = BitWriter::new();
        let levels = level_count(w, h);

        // Coarsest lattice: raw 8-bit pixels, copied into the pyramid.
        for (x, y) in top_pixels(Level(levels), w, h) {
            let v = tracked_image.read(p.index(x, y));
            out.put_bits(u32::from(v), 8);
            p.pyr.write(p.index(x, y), v);
        }

        // Refine level by level: predict, classify, code the error.
        for l in (0..levels).rev() {
            let level = Level(l);
            for (x, y) in new_pixels(level, w, h) {
                let (ctx, ridge_code, pred) = p.model(level, x, y);
                let i = p.index(x, y);
                let actual = tracked_image.read(i);
                let err = i32::from(actual) - i32::from(pred);
                // Quantize (identity when lossless), then zigzag-map.
                let qidx = p.quant.read((err + 255) as usize);
                let k = i32::from(qidx) - 255;
                let sym = p.zigzag.read((k + 255) as usize);
                p.coders[ctx].encode(sym, &mut out);
                let recon = (i32::from(pred) + k * p.quant_step).clamp(0, 255) as u16;
                p.pyr.write(i, recon);
                p.ridge.write(i, ridge_code);
            }
        }

        // Account the output buffer as the `bitbuf` basic group: one
        // write per produced byte.
        let bytes = out.into_bytes();
        registry.counter("bitbuf").count_writes(bytes.len() as u64);
        Ok(Encoded {
            width: w,
            height: h,
            config: self.config,
            bytes,
        })
    }
}

/// The BTPC decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    config: CodecConfig,
}

impl Decoder {
    /// Creates a decoder with the given configuration; it must match the
    /// encoder's.
    pub fn new(config: CodecConfig) -> Self {
        Decoder { config }
    }

    /// Decodes a stream produced by [`Encoder::encode`].
    ///
    /// # Errors
    ///
    /// Returns an error if the stream is truncated/corrupt or the
    /// configuration does not match.
    pub fn decode(&self, encoded: &Encoded) -> Result<Image, CodecError> {
        self.decode_with_registry(encoded, &ProfileRegistry::new())
    }

    /// Decodes with instrumentation (see
    /// [`Encoder::encode_with_registry`]).
    ///
    /// # Errors
    ///
    /// See [`Decoder::decode`].
    pub fn decode_with_registry(
        &self,
        encoded: &Encoded,
        registry: &ProfileRegistry,
    ) -> Result<Image, CodecError> {
        if *encoded.config() != self.config {
            return Err(CodecError::ConfigMismatch);
        }
        let (w, h) = (encoded.width(), encoded.height());
        registry
            .counter("bitbuf")
            .count_reads(encoded.bytes().len() as u64);
        let mut p = Pipeline::new(w, h, &self.config, registry);
        let mut input = BitReader::new(encoded.bytes());
        let levels = level_count(w, h);

        for (x, y) in top_pixels(Level(levels), w, h) {
            let v = input.get_bits(8)? as u16;
            p.pyr.write(p.index(x, y), v);
        }

        for l in (0..levels).rev() {
            let level = Level(l);
            for (x, y) in new_pixels(level, w, h) {
                let (ctx, ridge_code, pred) = p.model(level, x, y);
                let i = p.index(x, y);
                let sym = p.coders[ctx].decode(&mut input)?;
                if usize::from(sym) >= ERROR_SYMBOLS {
                    return Err(CodecError::CorruptStream {
                        position: input.position(),
                    });
                }
                let k = i32::from(p.unzig.read(usize::from(sym))) - 255;
                let recon = (i32::from(pred) + k * p.quant_step).clamp(0, 255) as u16;
                p.pyr.write(i, recon);
                p.ridge.write(i, ridge_code);
            }
        }

        let pixels = p.pyr.as_slice_untracked().to_vec();
        Ok(Image::from_pixels(w, h, pixels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(img: &Image) -> Image {
        let cfg = CodecConfig::lossless();
        let encoded = Encoder::new(cfg).encode(img).unwrap();
        Decoder::new(cfg).decode(&encoded).unwrap()
    }

    #[test]
    fn lossless_round_trip_gradient() {
        let img = Image::synthetic_gradient(32, 32);
        assert_eq!(round_trip(&img), img);
    }

    #[test]
    fn lossless_round_trip_natural() {
        let img = Image::synthetic_natural(64, 64, 42);
        assert_eq!(round_trip(&img), img);
    }

    #[test]
    fn lossless_round_trip_noise() {
        let img = Image::synthetic_noise(32, 32, 1);
        assert_eq!(round_trip(&img), img);
    }

    #[test]
    fn lossless_round_trip_non_square_odd_sizes() {
        for (w, h) in [(17, 33), (64, 16), (5, 5), (1, 7)] {
            let img = Image::synthetic_natural(w, h, 9);
            assert_eq!(round_trip(&img), img, "{w}x{h}");
        }
    }

    #[test]
    fn gradient_compresses_well() {
        let img = Image::synthetic_gradient(128, 128);
        let encoded = Encoder::new(CodecConfig::lossless()).encode(&img).unwrap();
        assert!(
            encoded.compression_ratio() > 2.0,
            "ratio {}",
            encoded.compression_ratio()
        );
    }

    #[test]
    fn noise_does_not_explode() {
        let img = Image::synthetic_noise(64, 64, 5);
        let encoded = Encoder::new(CodecConfig::lossless()).encode(&img).unwrap();
        // Entropy coding random 8-bit data costs < 1.5x raw.
        assert!(
            encoded.bit_len() < 64 * 64 * 12,
            "bits {}",
            encoded.bit_len()
        );
    }

    #[test]
    fn lossy_reduces_size_and_keeps_quality() {
        let img = Image::synthetic_natural(64, 64, 3);
        let lossless = Encoder::new(CodecConfig::lossless()).encode(&img).unwrap();
        let cfg = CodecConfig::lossy(8);
        let lossy = Encoder::new(cfg).encode(&img).unwrap();
        assert!(lossy.bit_len() < lossless.bit_len());
        let decoded = Decoder::new(cfg).decode(&lossy).unwrap();
        let psnr = decoded.psnr(&img);
        assert!(psnr > 28.0, "psnr {psnr}");
    }

    #[test]
    fn config_mismatch_detected() {
        let img = Image::synthetic_gradient(16, 16);
        let encoded = Encoder::new(CodecConfig::lossless()).encode(&img).unwrap();
        let err = Decoder::new(CodecConfig::lossy(4))
            .decode(&encoded)
            .unwrap_err();
        assert_eq!(err, CodecError::ConfigMismatch);
    }

    #[test]
    fn truncated_stream_detected() {
        let img = Image::synthetic_natural(32, 32, 2);
        let cfg = CodecConfig::lossless();
        let mut encoded = Encoder::new(cfg).encode(&img).unwrap();
        encoded.bytes.truncate(encoded.bytes.len() / 2);
        assert!(matches!(
            Decoder::new(cfg).decode(&encoded),
            Err(CodecError::Truncated(_))
        ));
    }

    #[test]
    fn profiling_counts_look_like_the_paper() {
        let img = Image::synthetic_natural(64, 64, 11);
        let registry = ProfileRegistry::new();
        Encoder::new(CodecConfig::lossless())
            .encode_with_registry(&img, &registry)
            .unwrap();
        let p = registry.snapshot();
        let (img_r, img_w) = p.counts("image").unwrap();
        let (pyr_r, pyr_w) = p.counts("pyr").unwrap();
        let (ridge_r, ridge_w) = p.counts("ridge").unwrap();
        // Every pixel read exactly once from the input image.
        assert_eq!(img_r, (64 * 64) as f64);
        assert_eq!(img_w, 0.0);
        // Every pixel written once to pyr; read ~4x for prediction.
        assert_eq!(pyr_w, (64 * 64) as f64);
        assert!(pyr_r > 3.0 * pyr_w, "pyr_r={pyr_r}");
        // ridge read together with pyr, written once per predicted pixel.
        assert_eq!(ridge_r, pyr_r);
        assert!(ridge_w > 0.9 * (64 * 64) as f64);
        // All six Huffman contexts exist.
        for c in 0..6 {
            assert!(p.counts(&format!("huff_freq_{c}")).is_some());
        }
    }

    #[test]
    fn encoded_metadata_accessors() {
        let img = Image::synthetic_gradient(16, 8);
        let encoded = Encoder::new(CodecConfig::lossless()).encode(&img).unwrap();
        assert_eq!((encoded.width(), encoded.height()), (16, 8));
        assert!(encoded.config().is_lossless());
        assert!(!encoded.bytes().is_empty());
    }

    #[test]
    #[should_panic(expected = ">= 2")]
    fn lossy_step_one_panics() {
        CodecConfig::lossy(1);
    }

    #[test]
    fn container_round_trip() {
        let img = Image::synthetic_natural(24, 16, 4);
        let cfg = CodecConfig::lossy(4);
        let encoded = Encoder::new(cfg).encode(&img).unwrap();
        let bytes = encoded.to_bytes();
        let parsed = Encoded::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, encoded);
        let decoded = Decoder::new(cfg).decode(&parsed).unwrap();
        assert_eq!(decoded.width(), 24);
    }

    #[test]
    fn malformed_containers_rejected() {
        assert!(Encoded::from_bytes(b"").is_err());
        assert!(Encoded::from_bytes(b"NOPE0000000000000000").is_err());
        // Zero width.
        let mut bytes = Encoder::new(CodecConfig::lossless())
            .encode(&Image::synthetic_gradient(4, 4))
            .unwrap()
            .to_bytes();
        bytes[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(Encoded::from_bytes(&bytes).is_err());
    }
}
