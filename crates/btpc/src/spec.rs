//! From codec profile to pruned application specification.
//!
//! This module performs the paper's §4.1 step for the BTPC demonstrator:
//! it runs the *instrumented* encoder on a representative input, scales
//! the measured access counts to the production frame size, and emits the
//! pruned [`AppSpec`] with the **18 basic groups** of §3 — three 1 M-word
//! arrays (`image`, `pyr`, `ridge`) and fifteen arrays of the order of
//! 256–512 words with bit widths from 2 (`ridge` is 2-bit) to 20 (the
//! Huffman frequency counters).
//!
//! Loop structure of the pruned code: one nest that raw-codes the
//! coarsest lattice, and one nest per neighbourhood context for the
//! prediction/coding loop. Splitting by context keeps the six Huffman
//! coders' accesses in *different* loop bodies, which correctly models
//! their mutual exclusion (per pixel only one coder runs) for the
//! storage-cycle-budget distribution.

use memx_ir::{
    AccessKind, AppSpec, AppSpecBuilder, BasicGroupId, BuildSpecError, LoopNestId, Placement,
};
use memx_profile::{Profile, ProfileRegistry};

use crate::{CodecConfig, Encoder, Image};

/// Number of Huffman contexts (mirrors the codec).
const CONTEXTS: usize = 6;
/// Error-symbol alphabet size (mirrors the codec).
const ERROR_SYMBOLS: u64 = 511;

/// Runs the instrumented BTPC encoder on a deterministic synthetic
/// "natural" image and returns the measured access profile.
///
/// Profiling on a reduced frame (`width`×`height`) is standard practice;
/// scale with [`Profile::scaled_to`] before building the production
/// spec.
pub fn measure_profile(width: usize, height: usize, seed: u64) -> Profile {
    let registry = ProfileRegistry::new();
    let image = Image::synthetic_natural(width, height, seed);
    Encoder::new(CodecConfig::lossless())
        .encode_with_registry(&image, &registry)
        .expect("instrumented encode cannot fail");
    registry.snapshot()
}

/// Handles to the interesting groups of the generated spec.
#[derive(Debug, Clone)]
pub struct BtpcSpec {
    /// The full pruned specification.
    pub spec: AppSpec,
    /// The 1 M-word input frame store.
    pub image: BasicGroupId,
    /// The 1 M-word reconstruction pyramid.
    pub pyr: BasicGroupId,
    /// The 1 M-word, 2-bit-wide pattern array.
    pub ridge: BasicGroupId,
    /// The per-context prediction/coding loop nests.
    pub refine_nests: Vec<LoopNestId>,
}

/// Builds the pruned BTPC specification for a `frame_width` ×
/// `frame_height` production frame from a measured (already scaled or
/// to-be-scaled) profile.
///
/// `cycle_budget` is the storage cycle budget derived from the real-time
/// constraint (the paper uses ~20 M cycles for 1 Mpixel at
/// 1 Mpixel/s).
///
/// # Errors
///
/// Returns an error if the profile is degenerate (e.g. empty) and the
/// resulting spec fails validation.
pub fn btpc_app_spec(
    profile: &Profile,
    frame_width: u64,
    frame_height: u64,
    cycle_budget: u64,
) -> Result<BtpcSpec, BuildSpecError> {
    let pixels = frame_width * frame_height;
    let mut b = AppSpecBuilder::new("btpc");

    // --- Basic groups (§3: 18 important arrays). -----------------------
    // Three very large groups; the frame store cannot fit on chip.
    let image = b.basic_group_placed("image", pixels, 8, Placement::OffChip)?;
    let pyr = b.basic_group_placed("pyr", pixels, 8, Placement::OffChip)?;
    let ridge = b.basic_group_placed("ridge", pixels, 2, Placement::OffChip)?;
    // Fifteen small groups: 6x Huffman frequency tables (20-bit — the
    // paper's widest), 6x code tables, two LUTs, the output buffer.
    let mut huff_freq = Vec::with_capacity(CONTEXTS);
    let mut huff_code = Vec::with_capacity(CONTEXTS);
    for c in 0..CONTEXTS {
        huff_freq.push(b.basic_group(format!("huff_freq_{c}"), ERROR_SYMBOLS, 20)?);
        huff_code.push(b.basic_group(format!("huff_code_{c}"), ERROR_SYMBOLS, 16)?);
    }
    let zigzag = b.basic_group("zigzag", ERROR_SYMBOLS, 10)?;
    let quant = b.basic_group("quant", ERROR_SYMBOLS, 9)?;
    let bitbuf = b.basic_group("bitbuf", 512, 16)?;

    // --- Profiled totals, scaled to the production frame. --------------
    let profiled_pixels: f64 = {
        let (img_reads, _) = profile.counts("image").unwrap_or((1.0, 0.0));
        img_reads.max(1.0)
    };
    let scale = pixels as f64 / profiled_pixels;
    let count = |name: &str| -> (f64, f64) {
        let (r, w) = profile.counts(name).unwrap_or((0.0, 0.0));
        (r * scale, w * scale)
    };

    // Symbols coded per context (one frequency-table write per symbol,
    // minus the rare rescale writes — a fine approximation).
    let sym_per_ctx: Vec<f64> = (0..CONTEXTS)
        .map(|c| count(&format!("huff_freq_{c}")).1.max(1.0))
        .collect();
    let new_pixels: f64 = sym_per_ctx.iter().sum();

    // Shared per-pixel traffic apportioned equally to every coded pixel.
    let (pyr_r, _pyr_w) = count("pyr");
    let (ridge_r, ridge_w) = count("ridge");
    let nb_weight = (pyr_r / (4.0 * new_pixels)).clamp(0.05, 1.0);
    let ridge_nb_weight = (ridge_r / (4.0 * new_pixels)).clamp(0.05, 1.0);
    let ridge_w_weight = (ridge_w / new_pixels).clamp(0.05, 1.0);
    let (_, bitbuf_w) = count("bitbuf");
    let bitbuf_weight = (bitbuf_w / new_pixels).clamp(0.01, 1.0);

    // --- Loop nest 1: raw-code the coarsest lattice. --------------------
    let top_count = (pixels / 1024).max(1); // spacing 32 at 1024x1024
    let top = b.loop_nest("top_init", top_count)?;
    let t_img = b.access(top, image, AccessKind::Read)?;
    let t_pyr = b.access(top, pyr, AccessKind::Write)?;
    let t_buf = b.access_weighted(top, bitbuf, AccessKind::Write, 1.0)?;
    b.depend(top, t_img, t_pyr)?;
    b.depend(top, t_img, t_buf)?;

    // --- Loop nests 2..7: prediction/coding, one per context. -----------
    let mut refine_nests = Vec::with_capacity(CONTEXTS);
    for c in 0..CONTEXTS {
        let iters = sym_per_ctx[c].round().max(1.0) as u64;
        let nest = b.loop_nest(format!("refine_ctx{c}"), iters)?;
        refine_nests.push(nest);

        // Gather: four pyr neighbours and their ridge codes.
        let mut gathers = Vec::new();
        for _ in 0..4 {
            gathers.push(b.access_weighted(nest, pyr, AccessKind::Read, nb_weight)?);
            gathers.push(b.access_weighted(nest, ridge, AccessKind::Read, ridge_nb_weight)?);
        }
        let a_img = b.access(nest, image, AccessKind::Read)?;
        let a_quant = b.access(nest, quant, AccessKind::Read)?;
        let a_zig = b.access(nest, zigzag, AccessKind::Read)?;
        // Per-context frequency reads include the periodic rebuild scans.
        let freq_r_per_sym = (count(&format!("huff_freq_{c}")).0 / sym_per_ctx[c]).max(0.1);
        let a_freq_r = add_scaled(&mut b, nest, huff_freq[c], AccessKind::Read, freq_r_per_sym)?;
        let a_freq_w = b.access(nest, huff_freq[c], AccessKind::Write)?;
        let code_r_per_sym = (count(&format!("huff_code_{c}")).0 / sym_per_ctx[c]).max(0.1);
        let a_code_r = add_scaled(&mut b, nest, huff_code[c], AccessKind::Read, code_r_per_sym)?;
        let a_buf = b.access_weighted(nest, bitbuf, AccessKind::Write, bitbuf_weight)?;
        let a_pyr_w = b.access(nest, pyr, AccessKind::Write)?;
        let a_ridge_w = b.access_weighted(nest, ridge, AccessKind::Write, ridge_w_weight)?;

        // Flow graph: gather -> quantize -> zigzag -> code -> emit;
        // frequency update after its read; writes after their inputs.
        for &g in &gathers {
            b.depend(nest, g, a_quant)?;
        }
        b.depend(nest, a_img, a_quant)?;
        b.depend(nest, a_quant, a_zig)?;
        b.depend(nest, a_zig, a_code_r)?;
        b.depend(nest, a_zig, a_freq_r)?;
        b.depend(nest, a_freq_r, a_freq_w)?;
        b.depend(nest, a_code_r, a_buf)?;
        b.depend(nest, a_quant, a_pyr_w)?;
        for &g in &gathers {
            b.depend(nest, g, a_ridge_w)?;
        }
    }

    b.cycle_budget(cycle_budget)
        .real_time_seconds(pixels as f64 / 1.0e6); // 1 Mpixel/s
    let spec = b.build()?;
    Ok(BtpcSpec {
        spec,
        image,
        pyr,
        ridge,
        refine_nests,
    })
}

/// Adds accesses totalling `per_iter` accesses per iteration: whole
/// accesses at weight 1 plus one fractional access. Returns the id of the
/// *last* added access (the chain anchor for dependencies).
fn add_scaled(
    b: &mut AppSpecBuilder,
    nest: LoopNestId,
    group: BasicGroupId,
    kind: AccessKind,
    per_iter: f64,
) -> Result<memx_ir::AccessId, BuildSpecError> {
    let whole = per_iter.floor() as usize;
    let frac = per_iter - per_iter.floor();
    let mut last = None;
    for _ in 0..whole {
        last = Some(b.access(nest, group, kind)?);
    }
    if frac > 1e-6 || last.is_none() {
        last = Some(b.access_weighted(nest, group, kind, frac.clamp(1e-6, 1.0))?);
    }
    Ok(last.expect("at least one access added"))
}

/// Convenience: profile at 128×128 and build the paper's production spec
/// (1024×1024 frame, 20 M-cycle storage budget).
///
/// # Errors
///
/// Propagates [`btpc_app_spec`] errors.
pub fn paper_spec() -> Result<BtpcSpec, BuildSpecError> {
    let profile = measure_profile(128, 128, 0xB7C0DE);
    btpc_app_spec(&profile, 1024, 1024, 20_000_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_has_all_tracked_arrays() {
        let p = measure_profile(32, 32, 1);
        for name in ["image", "pyr", "ridge", "zigzag", "quant", "bitbuf"] {
            assert!(p.counts(name).is_some(), "missing {name}");
        }
        for c in 0..CONTEXTS {
            assert!(p.counts(&format!("huff_freq_{c}")).is_some());
            assert!(p.counts(&format!("huff_code_{c}")).is_some());
        }
    }

    #[test]
    fn spec_has_eighteen_basic_groups() {
        let p = measure_profile(32, 32, 1);
        let btpc = btpc_app_spec(&p, 1024, 1024, 20_000_000).unwrap();
        assert_eq!(btpc.spec.basic_groups().len(), 18);
    }

    #[test]
    fn three_groups_are_one_megaword() {
        let p = measure_profile(32, 32, 1);
        let btpc = btpc_app_spec(&p, 1024, 1024, 20_000_000).unwrap();
        let big: Vec<_> = btpc
            .spec
            .basic_groups()
            .iter()
            .filter(|g| g.words() == 1024 * 1024)
            .collect();
        assert_eq!(big.len(), 3);
    }

    #[test]
    fn ridge_is_two_bits_and_freq_is_twenty() {
        let p = measure_profile(32, 32, 1);
        let btpc = btpc_app_spec(&p, 1024, 1024, 20_000_000).unwrap();
        assert_eq!(btpc.spec.group(btpc.ridge).bitwidth(), 2);
        let widths: Vec<u32> = btpc
            .spec
            .basic_groups()
            .iter()
            .map(|g| g.bitwidth())
            .collect();
        assert_eq!(*widths.iter().min().unwrap(), 2);
        assert_eq!(*widths.iter().max().unwrap(), 20);
    }

    #[test]
    fn spec_accesses_scale_to_frame() {
        let p = measure_profile(32, 32, 1);
        let btpc = btpc_app_spec(&p, 1024, 1024, 20_000_000).unwrap();
        let (img_r, _) = btpc.spec.total_accesses(btpc.image);
        let pixels = (1024 * 1024) as f64;
        // Every production pixel is read about once from the frame store.
        assert!((img_r - pixels).abs() / pixels < 0.05, "img_r = {img_r}");
    }

    #[test]
    fn spec_fits_its_budget() {
        let p = measure_profile(32, 32, 1);
        let btpc = btpc_app_spec(&p, 1024, 1024, 20_000_000).unwrap();
        assert!(btpc.spec.min_cycles() <= btpc.spec.cycle_budget());
    }

    #[test]
    fn real_time_matches_throughput_constraint() {
        let p = measure_profile(32, 32, 1);
        let btpc = btpc_app_spec(&p, 1024, 1024, 20_000_000).unwrap();
        // 1 Mpixel at 1 Mpixel/s.
        let rt = btpc.spec.real_time_seconds();
        assert!((rt - 1.048576).abs() < 1e-9, "rt = {rt}");
    }
}
