//! Command-line BTPC codec: compress and decompress PGM images.
//!
//! ```console
//! $ btpc encode input.pgm output.btpc [--quant N]
//! $ btpc decode input.btpc output.pgm
//! $ btpc roundtrip input.pgm            # encode+decode, report stats
//! ```

use std::fs;
use std::process::ExitCode;

use memx_btpc::pgm::{decode_pgm, encode_pgm};
use memx_btpc::{CodecConfig, Decoder, Encoded, Encoder};

fn usage() -> ExitCode {
    eprintln!("usage: btpc encode <in.pgm> <out.btpc> [--quant N]");
    eprintln!("       btpc decode <in.btpc> <out.pgm>");
    eprintln!("       btpc roundtrip <in.pgm> [--quant N]");
    ExitCode::FAILURE
}

fn parse_quant(args: &[String]) -> Result<u16, String> {
    if let Some(i) = args.iter().position(|a| a == "--quant") {
        let value = args
            .get(i + 1)
            .ok_or_else(|| "--quant needs a value".to_owned())?;
        value
            .parse::<u16>()
            .map_err(|e| format!("bad --quant value `{value}`: {e}"))
    } else {
        Ok(1)
    }
}

fn config(quant: u16) -> CodecConfig {
    if quant <= 1 {
        CodecConfig::lossless()
    } else {
        CodecConfig::lossy(quant)
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    match command {
        Some("encode") if args.len() >= 3 => {
            let quant = parse_quant(&args)?;
            let input = fs::read(&args[1]).map_err(|e| format!("{}: {e}", args[1]))?;
            let image = decode_pgm(&input).map_err(|e| e.to_string())?;
            let encoded = Encoder::new(config(quant))
                .encode(&image)
                .map_err(|e| e.to_string())?;
            fs::write(&args[2], encoded.to_bytes()).map_err(|e| format!("{}: {e}", args[2]))?;
            println!(
                "{}x{} -> {} bytes ({:.2}x compression)",
                image.width(),
                image.height(),
                encoded.bytes().len(),
                encoded.compression_ratio()
            );
            Ok(())
        }
        Some("decode") if args.len() >= 3 => {
            let input = fs::read(&args[1]).map_err(|e| format!("{}: {e}", args[1]))?;
            let encoded = Encoded::from_bytes(&input).map_err(|e| e.to_string())?;
            let image = Decoder::new(*encoded.config())
                .decode(&encoded)
                .map_err(|e| e.to_string())?;
            fs::write(&args[2], encode_pgm(&image)).map_err(|e| format!("{}: {e}", args[2]))?;
            println!("{} -> {}x{} PGM", args[1], image.width(), image.height());
            Ok(())
        }
        Some("roundtrip") if args.len() >= 2 => {
            let quant = parse_quant(&args)?;
            let input = fs::read(&args[1]).map_err(|e| format!("{}: {e}", args[1]))?;
            let image = decode_pgm(&input).map_err(|e| e.to_string())?;
            let cfg = config(quant);
            let encoded = Encoder::new(cfg)
                .encode(&image)
                .map_err(|e| e.to_string())?;
            let decoded = Decoder::new(cfg)
                .decode(&encoded)
                .map_err(|e| e.to_string())?;
            let psnr = decoded.psnr(&image);
            println!(
                "{}x{}: {:.2} bits/pixel, {:.2}x compression, {}",
                image.width(),
                image.height(),
                encoded.bit_len() as f64 / image.pixel_count() as f64,
                encoded.compression_ratio(),
                if psnr.is_infinite() {
                    "lossless".to_owned()
                } else {
                    format!("PSNR {psnr:.1} dB")
                }
            );
            Ok(())
        }
        _ => Err(String::new()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) if msg.is_empty() => usage(),
        Err(msg) => {
            eprintln!("btpc: {msg}");
            ExitCode::FAILURE
        }
    }
}
