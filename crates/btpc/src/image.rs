//! Grayscale images and deterministic synthetic generators.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// An 8-bit grayscale image (stored widened to `u16` so intermediate
/// pyramid values never overflow).
#[derive(Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u16>,
}

impl Image {
    /// Creates a black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Builds an image from row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or a pixel exceeds 255.
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u16>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel buffer size mismatch");
        assert!(pixels.iter().all(|&p| p <= 255), "pixels must be 8-bit");
        Image {
            width,
            height,
            pixels,
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total pixel count.
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u16 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// Sets pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u16) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = v;
    }

    /// Row-major pixel data.
    pub fn pixels(&self) -> &[u16] {
        &self.pixels
    }

    /// A smooth diagonal gradient — highly predictable, compresses well.
    pub fn synthetic_gradient(width: usize, height: usize) -> Self {
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, (((x + y) * 255) / (width + height - 2).max(1)) as u16);
            }
        }
        img
    }

    /// Deterministic natural-image stand-in: smooth background plus
    /// edges and mild texture, seeded so profiles are reproducible.
    pub fn synthetic_natural(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut img = Image::new(width, height);
        // Low-frequency background from a few random cosine plane waves.
        let waves: Vec<(f64, f64, f64, f64)> = (0..4)
            .map(|_| {
                (
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.5..3.0),
                    rng.gen_range(0.0..std::f64::consts::TAU),
                    rng.gen_range(10.0..40.0),
                )
            })
            .collect();
        // A couple of hard edges (objects).
        let edges: Vec<(usize, usize, usize, usize, i32)> = (0..3)
            .map(|_| {
                let x0 = rng.gen_range(0..width);
                let y0 = rng.gen_range(0..height);
                (
                    x0,
                    y0,
                    rng.gen_range(x0..width.max(x0 + 1)),
                    rng.gen_range(y0..height.max(y0 + 1)),
                    rng.gen_range(-60..60),
                )
            })
            .collect();
        for y in 0..height {
            for x in 0..width {
                let mut v = 128.0;
                for &(fx, fy, ph, amp) in &waves {
                    let arg = std::f64::consts::TAU
                        * (fx * x as f64 / width as f64 + fy * y as f64 / height as f64)
                        + ph;
                    v += amp * arg.cos();
                }
                for &(x0, y0, x1, y1, delta) in &edges {
                    if x >= x0 && x < x1 && y >= y0 && y < y1 {
                        v += f64::from(delta);
                    }
                }
                v += rng.gen_range(-3.0..3.0); // sensor noise
                img.set(x, y, v.clamp(0.0, 255.0) as u16);
            }
        }
        img
    }

    /// Uniform random noise — the worst case for prediction.
    pub fn synthetic_noise(width: usize, height: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut img = Image::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, rng.gen_range(0..=255));
            }
        }
        img
    }

    /// Peak signal-to-noise ratio against a reference, in dB
    /// (`f64::INFINITY` for identical images).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn psnr(&self, reference: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (reference.width, reference.height),
            "psnr requires equal dimensions"
        );
        let mse: f64 = self
            .pixels
            .iter()
            .zip(&reference.pixels)
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum::<f64>()
            / self.pixel_count() as f64;
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Image({}x{})", self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut img = Image::new(4, 3);
        img.set(3, 2, 200);
        assert_eq!(img.get(3, 2), 200);
        assert_eq!(img.pixel_count(), 12);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        Image::new(2, 2).get(2, 0);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = Image::synthetic_natural(32, 32, 7);
        let b = Image::synthetic_natural(32, 32, 7);
        assert_eq!(a, b);
        let c = Image::synthetic_natural(32, 32, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn gradient_is_monotone_along_diagonal() {
        let img = Image::synthetic_gradient(16, 16);
        assert!(img.get(0, 0) < img.get(15, 15));
        assert_eq!(img.get(15, 15), 255);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = Image::synthetic_gradient(8, 8);
        assert!(img.psnr(&img).is_infinite());
    }

    #[test]
    fn psnr_decreases_with_distortion() {
        let img = Image::synthetic_gradient(8, 8);
        let mut one_off = img.clone();
        one_off.set(0, 0, img.get(0, 0) + 1);
        let mut five_off = img.clone();
        five_off.set(0, 0, img.get(0, 0) + 5);
        assert!(one_off.psnr(&img) > five_off.psnr(&img));
    }

    #[test]
    fn noise_uses_full_range() {
        let img = Image::synthetic_noise(64, 64, 3);
        let max = img.pixels().iter().max().unwrap();
        let min = img.pixels().iter().min().unwrap();
        assert!(*max > 200);
        assert!(*min < 50);
    }
}
