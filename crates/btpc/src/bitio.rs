//! Bit-granular output/input streams for the entropy coder.

use std::error::Error;
use std::fmt;

/// Error returned when a [`BitReader`] runs past the end of its stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadBitsError {
    /// Bit position at which the read was attempted.
    pub position: usize,
}

impl fmt::Display for ReadBitsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bitstream exhausted at bit {}", self.position)
    }
}

impl Error for ReadBitsError {}

/// Accumulates bits most-significant-first into a byte vector.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        if self.bit_pos == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.len() - 1;
            self.bytes[last] |= 1 << (7 - self.bit_pos);
        }
        self.bit_pos = (self.bit_pos + 1) % 8;
    }

    /// Appends the `count` low bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn put_bits(&mut self, value: u32, count: u32) {
        assert!(count <= 32, "at most 32 bits per call");
        for i in (0..count).rev() {
            self.put_bit((value >> i) & 1 == 1);
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bit_pos == 0 {
            self.bytes.len() * 8
        } else {
            (self.bytes.len() - 1) * 8 + usize::from(self.bit_pos)
        }
    }

    /// Finishes the stream (zero-padding the last byte) and returns the
    /// bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads one bit.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool, ReadBitsError> {
        let byte = self.pos / 8;
        if byte >= self.bytes.len() {
            return Err(ReadBitsError { position: self.pos });
        }
        let bit = (self.bytes[byte] >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Reads `count` bits, most significant first.
    ///
    /// # Errors
    ///
    /// Returns an error at end of stream.
    ///
    /// # Panics
    ///
    /// Panics if `count > 32`.
    pub fn get_bits(&mut self, count: u32) -> Result<u32, ReadBitsError> {
        assert!(count <= 32, "at most 32 bits per call");
        let mut v = 0u32;
        for _ in 0..count {
            v = (v << 1) | u32::from(self.get_bit()?);
        }
        Ok(v)
    }

    /// Current bit position.
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_round_trip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn multi_bit_values_round_trip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xABCD, 16);
        w.put_bits(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.get_bits(1).unwrap(), 1);
    }

    #[test]
    fn exhausted_reader_errors() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.get_bits(8).unwrap(), 0xFF);
        assert_eq!(r.get_bit().unwrap_err(), ReadBitsError { position: 8 });
    }

    #[test]
    fn zero_count_reads_nothing() {
        let mut r = BitReader::new(&[]);
        assert_eq!(r.get_bits(0).unwrap(), 0);
        assert_eq!(r.position(), 0);
    }

    #[test]
    fn bit_len_counts_partial_bytes() {
        let mut w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        w.put_bit(true);
        assert_eq!(w.bit_len(), 1);
        w.put_bits(0, 7);
        assert_eq!(w.bit_len(), 8);
        w.put_bit(false);
        assert_eq!(w.bit_len(), 9);
    }
}
