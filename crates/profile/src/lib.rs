//! # memx-profile — automatic access-count instrumentation
//!
//! §4.1 of the paper: *"Because this kind of profiling is so often
//! necessary to do any memory-related optimizations, we have written
//! software to automatically instrument the application to gather the
//! access counts."* This crate is that software for Rust applications:
//! wrap each important array in a [`TrackedArray`] registered with a
//! [`ProfileRegistry`], run the application on representative inputs, and
//! snapshot a [`Profile`] of per-array read/write counts.
//!
//! The [`Profile`] can then be scaled (profiling runs use smaller inputs
//! than the 1024×1024 production frames) and fed to the spec builders of
//! the demonstrator crates.
//!
//! # Example
//!
//! ```
//! use memx_profile::{ProfileRegistry, TrackedArray};
//!
//! let registry = ProfileRegistry::new();
//! let mut xs: TrackedArray<u16> = registry.array("xs", 8);
//! xs.write(3, 42);
//! let v = xs.read(3);
//! assert_eq!(v, 42);
//! let profile = registry.snapshot();
//! assert_eq!(profile.counts("xs"), Some((1.0, 1.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod counter;
mod registry;
mod snapshot;
mod tracked;

pub use counter::AccessCounter;
pub use registry::ProfileRegistry;
pub use snapshot::{ArrayCounts, Profile};
pub use tracked::TrackedArray;
