//! Registry collecting counters for all tracked arrays of a run.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::{AccessCounter, ArrayCounts, Profile, TrackedArray};

/// Central registry of per-array access counters.
///
/// One registry corresponds to one instrumented application run; the
/// demonstrator creates a registry, allocates its arrays through it,
/// executes, and snapshots the [`Profile`].
#[derive(Debug, Default)]
pub struct ProfileRegistry {
    counters: Mutex<BTreeMap<String, Arc<AccessCounter>>>,
}

impl ProfileRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (creating on first use) the counter registered under
    /// `name`. Arrays that share a name share a counter, which is how
    /// multiple instances of a working buffer aggregate into one basic
    /// group.
    pub fn counter(&self, name: &str) -> Arc<AccessCounter> {
        let mut map = self
            .counters
            .lock()
            // A poisoned registry lock only means a panic elsewhere mid-insert;
            // the map itself holds monotone counters with no invariant to lose.
            .unwrap_or_else(|p| p.into_inner());
        Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(AccessCounter::new())),
        )
    }

    /// Convenience: allocates a zeroed [`TrackedArray`] registered under
    /// `name`.
    pub fn array<T: Copy + Default>(&self, name: &str, len: usize) -> TrackedArray<T> {
        TrackedArray::new(name, len, self.counter(name))
    }

    /// Snapshots the current counts of every registered array.
    pub fn snapshot(&self) -> Profile {
        let map = self
            .counters
            .lock()
            // A poisoned registry lock only means a panic elsewhere mid-insert;
            // the map itself holds monotone counters with no invariant to lose.
            .unwrap_or_else(|p| p.into_inner());
        Profile::from_counts(map.iter().map(|(name, c)| {
            let (reads, writes) = c.counts();
            ArrayCounts {
                name: name.clone(),
                reads: reads as f64,
                writes: writes as f64,
            }
        }))
    }

    /// Resets every counter to zero (e.g. to exclude a warm-up encode).
    pub fn reset(&self) {
        let map = self
            .counters
            .lock()
            // A poisoned registry lock only means a panic elsewhere mid-insert;
            // the map itself holds monotone counters with no invariant to lose.
            .unwrap_or_else(|p| p.into_inner());
        for c in map.values() {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_shares_counter() {
        let r = ProfileRegistry::new();
        let a: TrackedArray<u8> = r.array("buf", 4);
        let b: TrackedArray<u8> = r.array("buf", 4);
        a.read(0);
        b.read(1);
        assert_eq!(r.snapshot().counts("buf"), Some((2.0, 0.0)));
    }

    #[test]
    fn snapshot_lists_all_arrays() {
        let r = ProfileRegistry::new();
        let _a: TrackedArray<u8> = r.array("a", 1);
        let _b: TrackedArray<u8> = r.array("b", 1);
        let p = r.snapshot();
        assert_eq!(p.arrays().len(), 2);
        assert_eq!(p.counts("a"), Some((0.0, 0.0)));
        assert_eq!(p.counts("missing"), None);
    }

    #[test]
    fn reset_clears_counts() {
        let r = ProfileRegistry::new();
        let a: TrackedArray<u8> = r.array("a", 1);
        a.read(0);
        r.reset();
        assert_eq!(r.snapshot().counts("a"), Some((0.0, 0.0)));
    }
}
