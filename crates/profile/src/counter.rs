//! Thread-safe per-array access counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Read/write counters for one tracked array.
///
/// Counters are lock-free; instrumented inner loops only pay two relaxed
/// atomic increments per access.
#[derive(Debug, Default)]
pub struct AccessCounter {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl AccessCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one read.
    #[inline]
    pub fn count_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write.
    #[inline]
    pub fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` reads at once (bulk transfers).
    #[inline]
    pub fn count_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` writes at once (bulk transfers).
    #[inline]
    pub fn count_writes(&self, n: u64) {
        self.writes.fetch_add(n, Ordering::Relaxed);
    }

    /// Current (reads, writes).
    pub fn counts(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_accumulate() {
        let c = AccessCounter::new();
        c.count_read();
        c.count_read();
        c.count_write();
        c.count_reads(10);
        c.count_writes(5);
        assert_eq!(c.counts(), (12, 6));
    }

    #[test]
    fn reset_zeroes() {
        let c = AccessCounter::new();
        c.count_read();
        c.reset();
        assert_eq!(c.counts(), (0, 0));
    }

    #[test]
    fn concurrent_increments_do_not_lose_counts() {
        let c = Arc::new(AccessCounter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.count_read();
                        c.count_write();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.counts(), (4000, 4000));
    }
}
