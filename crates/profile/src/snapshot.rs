//! Immutable profile snapshots and scaling.

use std::collections::BTreeMap;
use std::fmt;

/// Per-array (weighted) read/write totals of one profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayCounts {
    /// Registered array name.
    pub name: String,
    /// Total reads (fractional after scaling).
    pub reads: f64,
    /// Total writes (fractional after scaling).
    pub writes: f64,
}

impl ArrayCounts {
    /// Reads + writes.
    pub fn total(&self) -> f64 {
        self.reads + self.writes
    }
}

/// A snapshot of access counts for every tracked array of a run.
///
/// Profiles are taken on reduced inputs (profiling a full 1024×1024
/// encode is unnecessary) and then scaled with [`Profile::scaled`] to the
/// production input size before building the application spec.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Profile {
    arrays: BTreeMap<String, ArrayCounts>,
}

impl Profile {
    /// Builds a profile from per-array counts.
    pub fn from_counts(counts: impl IntoIterator<Item = ArrayCounts>) -> Self {
        Profile {
            arrays: counts.into_iter().map(|c| (c.name.clone(), c)).collect(),
        }
    }

    /// All per-array entries, ordered by name.
    pub fn arrays(&self) -> Vec<&ArrayCounts> {
        self.arrays.values().collect()
    }

    /// (reads, writes) of the array registered under `name`.
    pub fn counts(&self, name: &str) -> Option<(f64, f64)> {
        self.arrays.get(name).map(|c| (c.reads, c.writes))
    }

    /// Total accesses across all arrays.
    pub fn total_accesses(&self) -> f64 {
        self.arrays.values().map(ArrayCounts::total).sum()
    }

    /// Returns a copy with every count multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn scaled(&self, factor: f64) -> Profile {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Profile {
            arrays: self
                .arrays
                .iter()
                .map(|(k, c)| {
                    (
                        k.clone(),
                        ArrayCounts {
                            name: c.name.clone(),
                            reads: c.reads * factor,
                            writes: c.writes * factor,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Scales a profile measured on `from_pixels` input samples to
    /// `to_pixels` samples — access counts of image kernels grow linearly
    /// in the pixel count.
    pub fn scaled_to(&self, from_pixels: u64, to_pixels: u64) -> Profile {
        self.scaled(to_pixels as f64 / from_pixels as f64)
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<16} {:>14} {:>14}", "array", "reads", "writes")?;
        for c in self.arrays.values() {
            writeln!(f, "{:<16} {:>14.0} {:>14.0}", c.name, c.reads, c.writes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> Profile {
        Profile::from_counts([
            ArrayCounts {
                name: "a".into(),
                reads: 100.0,
                writes: 50.0,
            },
            ArrayCounts {
                name: "b".into(),
                reads: 10.0,
                writes: 0.0,
            },
        ])
    }

    #[test]
    fn totals() {
        let p = profile();
        assert_eq!(p.total_accesses(), 160.0);
        assert_eq!(p.counts("a"), Some((100.0, 50.0)));
    }

    #[test]
    fn scaling_multiplies_counts() {
        let p = profile().scaled(2.0);
        assert_eq!(p.counts("a"), Some((200.0, 100.0)));
    }

    #[test]
    fn scaled_to_pixels() {
        let p = profile().scaled_to(64 * 64, 1024 * 1024);
        assert_eq!(p.counts("b"), Some((2560.0, 0.0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_scale_panics() {
        profile().scaled(0.0);
    }

    #[test]
    fn display_lists_rows() {
        let s = profile().to_string();
        assert!(s.contains("array"));
        assert!(s.contains('a'));
        assert!(s.contains('b'));
    }
}
