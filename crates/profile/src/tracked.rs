//! Instrumented array wrapper.

use std::fmt;
use std::sync::Arc;

use crate::AccessCounter;

/// An array whose element accesses are counted.
///
/// This is the instrumentation the paper inserts automatically into the C
/// specification: every `read`/`write` bumps the shared
/// [`AccessCounter`] registered under the array's name.
///
/// Only explicit `read`/`write` calls are counted; bulk initialization via
/// [`TrackedArray::fill_untracked`] is free, matching the paper's
/// convention that one-time initialisation DMA is not part of the profiled
/// kernel.
pub struct TrackedArray<T> {
    name: String,
    data: Vec<T>,
    counter: Arc<AccessCounter>,
}

impl<T: Copy + Default> TrackedArray<T> {
    /// Creates a zero-initialized tracked array.
    pub fn new(name: impl Into<String>, len: usize, counter: Arc<AccessCounter>) -> Self {
        TrackedArray {
            name: name.into(),
            data: vec![T::default(); len],
            counter,
        }
    }

    /// The registered name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reads element `i`, counting one read.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn read(&self, i: usize) -> T {
        self.counter.count_read();
        self.data[i]
    }

    /// Writes element `i`, counting one write.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn write(&mut self, i: usize, value: T) {
        self.counter.count_write();
        self.data[i] = value;
    }

    /// Reads element `i` without counting (for assertions/debug dumps).
    #[inline]
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Overwrites the whole contents without counting (input DMA).
    pub fn fill_untracked(&mut self, values: &[T]) {
        self.data.copy_from_slice(values);
    }

    /// Borrows the raw contents without counting.
    pub fn as_slice_untracked(&self) -> &[T] {
        &self.data
    }

    /// The counter shared with the registry.
    pub fn counter(&self) -> &Arc<AccessCounter> {
        &self.counter
    }
}

impl<T> fmt::Debug for TrackedArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (r, w) = self.counter.counts();
        f.debug_struct("TrackedArray")
            .field("name", &self.name)
            .field("len", &self.data.len())
            .field("reads", &r)
            .field("writes", &w)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr() -> TrackedArray<u8> {
        TrackedArray::new("a", 4, Arc::new(AccessCounter::new()))
    }

    #[test]
    fn read_write_count() {
        let mut a = arr();
        a.write(0, 7);
        a.write(1, 9);
        assert_eq!(a.read(0), 7);
        assert_eq!(a.counter().counts(), (1, 2));
    }

    #[test]
    fn peek_and_fill_do_not_count() {
        let mut a = arr();
        a.fill_untracked(&[1, 2, 3, 4]);
        assert_eq!(a.peek(2), 3);
        assert_eq!(a.as_slice_untracked(), &[1, 2, 3, 4]);
        assert_eq!(a.counter().counts(), (0, 0));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        arr().read(99);
    }

    #[test]
    fn debug_shows_counts() {
        let a = arr();
        a.read(0);
        let s = format!("{a:?}");
        assert!(s.contains("reads: 1"));
    }
}
