//! # memexplore
//!
//! System-level memory organization design exploration with accurate
//! area/power/performance feedback — a Rust reproduction of
//! *Vandecappelle, Miranda, Brockmeyer, Catthoor, Verkest: "Global
//! Multimedia System Design Exploration using Accurate Memory
//! Organization Feedback", DAC 1999* (IMEC).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`ir`] — the pruned application-specification IR (basic groups,
//!   loop nests, access flow graphs);
//! * [`memlib`] — memory technology models (on-chip SRAM module
//!   generator stand-in, off-chip EDO-DRAM part catalog) and the
//!   three-figure [`memlib::CostBreakdown`];
//! * [`core`] — the methodology: pruning, MACP analysis, basic-group
//!   structuring, memory-hierarchy insertion, storage-cycle-budget
//!   distribution, memory allocation and signal-to-memory assignment,
//!   the feedback driver, and the parallel batched exploration engine
//!   ([`core::engine`]);
//! * [`btpc`] — the demonstrator application, a complete Binary Tree
//!   Predictive Coding image codec with instrumented arrays;
//! * [`profile`] — the access-count instrumentation substrate.
//!
//! # Quickstart
//!
//! ```
//! use memexplore::core::explore::{evaluate, EvaluateOptions};
//! use memexplore::ir::{AppSpecBuilder, AccessKind};
//! use memexplore::memlib::MemLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = AppSpecBuilder::new("fir");
//! let taps = b.basic_group("taps", 64, 12)?;
//! let nest = b.loop_nest("mac", 100_000)?;
//! b.access(nest, taps, AccessKind::Read)?;
//! b.cycle_budget(400_000).real_time_seconds(1e-2);
//! let spec = b.build()?;
//!
//! let lib = MemLibrary::default_07um();
//! let report = evaluate(&spec, &lib, &EvaluateOptions::default())?;
//! println!("{}", report.cost);
//! # Ok(())
//! # }
//! ```
//!
//! See `examples/` for complete walkthroughs, DESIGN.md for the system
//! inventory and EXPERIMENTS.md for the paper-versus-measured record.

pub use memx_btpc as btpc;
pub use memx_core as core;
pub use memx_ir as ir;
pub use memx_memlib as memlib;
pub use memx_profile as profile;
