//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment for this workspace has no access to a crate
//! registry, so this shim provides exactly the surface the tree uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over integer and float ranges. The generator is a
//! SplitMix64 stream — statistically fine for synthetic test images and
//! property-test inputs, and fully deterministic per seed.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be cheaply constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to draw a uniform sample of `T` from an RNG.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // The unit draw is computed in f64 so that narrowing to f32
                // cannot round up to exactly 1.0 and emit the excluded end;
                // the clamp covers the end also being reachable by rounding
                // of the final multiply-add.
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let sample = self.start + (unit as $t) * (self.end - self.start);
                if sample < self.end {
                    sample
                } else {
                    <$t>::max(self.start, self.end.next_down())
                }
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // fl(end - start) can round up, letting the maximum draw
                // overshoot end — clamp to keep the inclusive contract.
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                <$t>::min(start + (unit as $t) * (end - start), end)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: one multiply-xorshift pipeline per output word.
    ///
    /// Not the xoshiro generator the real `rand` uses for `SmallRng`, but
    /// the same contract: fast, seedable, deterministic, non-crypto.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let v = rng.gen_range(-60i32..60);
            assert!((-60..60).contains(&v));
            let f = rng.gen_range(0.5f64..3.0);
            assert!((0.5..3.0).contains(&f));
            let u = rng.gen_range(0u16..=255);
            assert!(u <= 255);
        }
    }

    #[test]
    fn inclusive_float_range_never_overshoots_end() {
        // fl(0.2 - -0.1) rounds up, so an unclamped maximum draw would
        // return 0.20000000000000004 > end.
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(-0.1f64..=0.2);
            assert!((-0.1..=0.2).contains(&v), "{v} escaped the range");
        }
    }

    #[test]
    fn full_u32_inclusive_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let _ = rng.gen_range(0u32..=u32::MAX);
        }
    }
}
