//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Strategy yielding `true` or `false` with equal probability.
#[derive(Clone, Copy, Debug)]
pub struct Any;

/// The unique value of [`Any`], mirroring `proptest::bool::ANY`.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}
