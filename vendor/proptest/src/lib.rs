//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate-registry access, so this shim
//! implements the subset of proptest the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//! * range, tuple, and boolean strategies, `collection::vec`,
//!   `array::uniform3`, and [`strategy::Just`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the generated seed so it can be reproduced, but is not minimised.
//! Generation is deterministic per test (seeded from the test's module
//! path and name), so CI failures reproduce locally.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod array;
pub mod bool;
pub mod collection;

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module alias exported by proptest's prelude.
    pub mod prop {
        pub use crate::{array, bool, collection};
    }
}

/// Asserts a condition inside a [`proptest!`] body.
///
/// The shim panics immediately (no shrinking), which the libtest harness
/// reports as a test failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategies = ( $($strat,)* );
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for case in 0..config.cases {
                    let draws_before = rng.words_drawn();
                    let ( $($arg,)* ) =
                        $crate::strategy::Strategy::generate(&strategies, &mut rng);
                    let result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = result {
                        eprintln!(
                            "proptest-shim: case {}/{} failed after {} draws; \
                             generation is deterministic per test, re-run to reproduce",
                            case + 1,
                            config.cases,
                            draws_before,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
