//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `[T; N]` by drawing each element from the same strategy.
#[derive(Clone, Debug)]
pub struct UniformArray<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        core::array::from_fn(|_| self.element.generate(rng))
    }
}

/// Generates `[T; 2]` from one element strategy.
pub fn uniform2<S: Strategy>(element: S) -> UniformArray<S, 2> {
    UniformArray { element }
}

/// Generates `[T; 3]` from one element strategy.
pub fn uniform3<S: Strategy>(element: S) -> UniformArray<S, 3> {
    UniformArray { element }
}

/// Generates `[T; 4]` from one element strategy.
pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
    UniformArray { element }
}
