//! The [`Strategy`] trait and the built-in strategies for ranges, tuples,
//! and constants.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// The shim's contract is generation only — there is no shrinking tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
