//! Test-runner configuration and the deterministic RNG behind generation.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Run configuration for a [`proptest!`](crate::proptest) block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generation RNG, seeded from the test's full path so every
/// property draws an independent but reproducible stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: SmallRng,
    draws: u64,
}

impl TestRng {
    /// Seeds the RNG from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash),
            draws: 0,
        }
    }

    /// Number of words drawn so far. Generation is deterministic per
    /// test name, so a failure reproduces by simply re-running the test;
    /// this counter only identifies *where* in the stream it happened.
    pub fn words_drawn(&self) -> u64 {
        self.draws
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        let word = self.inner.next_u64();
        self.draws = self.draws.wrapping_add(1);
        word
    }
}
