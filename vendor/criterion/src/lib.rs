//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crate-registry access, so this shim keeps
//! the workspace's `harness = false` bench targets compiling and runnable:
//! it implements [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurements are wall-clock means over a
//! time-boxed sample loop — adequate for smoke-running the benches and for
//! relative comparisons, without criterion's statistical machinery.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound on the wall-clock time spent measuring one benchmark.
const TIME_BOX: Duration = Duration::from_secs(1);

/// Top-level benchmark driver.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets how many timed iterations each benchmark aims for.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples > 0, "sample size must be positive");
        self.sample_size = samples;
        self
    }

    /// Runs a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Records the input size benchmarks in this group process. The shim
    /// accepts and ignores it (no per-element rate reporting).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label()));
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            label: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Units of work per iteration, used by criterion for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times a closure over a bounded number of iterations.
pub struct Bencher {
    sample_size: usize,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            iterations: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Measures `routine`: one warm-up call, then up to `sample_size`
    /// timed iterations bounded by a one-second time box.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let started = Instant::now();
        let mut iterations = 0u64;
        while iterations < self.sample_size as u64 && started.elapsed() < TIME_BOX {
            black_box(routine());
            iterations += 1;
        }
        self.iterations = iterations.max(1);
        self.elapsed = started.elapsed();
    }

    fn report(&self, label: &str) {
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iterations.max(1));
        println!(
            "bench: {label:<40} {per_iter:>12} ns/iter ({} iterations, sample size {})",
            self.iterations, self.sample_size,
        );
    }
}

/// Declares a benchmark group function, in either the plain list form or
/// the `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ( $name:ident, $($target:path),+ $(,)? ) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ( $($group:path),+ $(,)? ) => {
        fn main() {
            $( $group(); )+
        }
    };
}
