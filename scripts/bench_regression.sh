#!/usr/bin/env bash
# Perf regression gate over BENCH_explore.json artifacts.
#
#   scripts/bench_regression.sh PREV.json NEW.json
#
# Fails (exit 1) when:
#   * any binary's wall-clock in NEW exceeds 1.5x its PREV time (only
#     binaries taking >= 0.2 s are gated — sub-tenth-second timings are
#     timer noise, not signal);
#   * NEW's table4 pairwise-bound node count exceeds the solo baseline
#     (the pairwise-conflict bound must never prune *less* than the solo
#     bound it replaced) — checked even without a PREV artifact.
#
# A missing PREV (first run, expired CI cache) skips the wall-clock
# comparison with a note instead of failing, so the gate bootstraps
# itself.
set -euo pipefail

prev=${1:?usage: bench_regression.sh PREV.json NEW.json}
new=${2:?usage: bench_regression.sh PREV.json NEW.json}
max_ratio="1.5"
min_gated_seconds="0.2"

[ -f "$new" ] || { echo "bench-regression: missing $new" >&2; exit 1; }

# field FILE KEY -> first numeric value of "KEY": NUM in FILE
field() {
    sed -n "s/.*\"$2\": \([0-9][0-9.]*\).*/\1/p" "$1" | head -1
}

# seconds FILE BINARY -> the binary's "seconds" value
seconds() {
    awk -v bin="\"$2\"" '
        index($0, bin) && match($0, /"seconds": [0-9.]+/) {
            print substr($0, RSTART + 11, RLENGTH - 11); exit
        }' "$1"
}

fail=0

# --- Nodes invariant (self-contained: no PREV needed). ----------------
solo=$(field "$new" solo)
pairwise=$(field "$new" pairwise)
if [ -n "$solo" ] && [ -n "$pairwise" ]; then
    if [ "$pairwise" -gt "$solo" ]; then
        echo "bench-regression: FAIL pairwise bound visits $pairwise nodes > solo $solo" >&2
        fail=1
    else
        echo "bench-regression: nodes ok (pairwise $pairwise <= solo $solo)"
    fi
else
    echo "bench-regression: FAIL $new lacks table4_nodes counters" >&2
    fail=1
fi

# --- Wall-clock comparison against the previous artifact. --------------
if [ ! -f "$prev" ]; then
    echo "bench-regression: no previous baseline ($prev); skipping wall-clock gate"
else
    for bin in table3_cycle_budget table4_allocation codec_rd_sweep; do
        old=$(seconds "$prev" "$bin")
        cur=$(seconds "$new" "$bin")
        if [ -z "$old" ] || [ -z "$cur" ]; then
            echo "bench-regression: $bin missing from an artifact; skipping"
            continue
        fi
        # Both samples must clear the noise floor: a sub-floor baseline
        # is itself timer noise and would make the ratio meaningless.
        verdict=$(awk -v o="$old" -v c="$cur" -v r="$max_ratio" -v m="$min_gated_seconds" \
            'BEGIN { print (c >= m && o >= m && c > o * r) ? "regressed" : "ok" }')
        if [ "$verdict" = "regressed" ]; then
            echo "bench-regression: FAIL $bin ${cur}s > ${max_ratio}x previous ${old}s" >&2
            fail=1
        else
            echo "bench-regression: $bin ok (${old}s -> ${cur}s)"
        fi
    done
fi

exit $fail
