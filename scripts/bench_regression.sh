#!/usr/bin/env bash
# Perf regression gate over BENCH_explore.json artifacts.
#
#   scripts/bench_regression.sh PREV.json NEW.json
#
# Fails (exit 1) when:
#   * any binary's wall-clock in NEW exceeds 1.5x its PREV time (only
#     binaries taking >= 0.2 s are gated — sub-tenth-second timings are
#     timer noise, not signal);
#   * NEW's table4 pairwise-bound node count exceeds the solo baseline
#     (the pairwise-conflict bound must never prune *less* than the solo
#     bound it replaced) — checked even without a PREV artifact;
#   * NEW's table4 off-chip branch-and-bound node count reaches the
#     Bell-number partition space of the retired exhaustive enumeration
#     (the search must prune, not enumerate) — also self-contained;
#   * NEW's off-chip node count exceeds 1.5x PREV's (pruning regressed
#     against the cached baseline);
#   * NEW's tie-plateau node count with the symmetric-group dominance
#     rule is not strictly below the count without it (the rule must
#     actually collapse the plateau; the instance is a pure tie, so the
#     bound alone cannot account for the cut) — self-contained;
#   * NEW's scbd_cache block reports zero warm hits or nonzero warm
#     misses (the persistent cache stopped serving, or a warm cache is
#     incomplete for an unchanged binary) — self-contained, no PREV
#     needed;
#   * NEW's alloc_cache block reports zero warm hits or nonzero warm
#     misses (same invariant for the phase-2 allocation cache: a warm
#     run must short-circuit every branch-and-bound) — self-contained;
#   * NEW's serve block reports zero warm hits (the resident daemon's
#     shared cache stopped serving the second pass of an identical
#     batch) — self-contained;
#   * NEW's corpus block reports zero entries or zero warm hits (the
#     workload corpus vanished, or text-parsed specs stopped hashing
#     onto the cache keys of their Rust-built equivalents) —
#     self-contained.
#
# A missing PREV (first run, expired CI cache) skips the wall-clock
# comparison with a note instead of failing, so the gate bootstraps
# itself. A PREV from an older schema (no table4_off_chip block, a
# v3 artifact without the scbd_cache block, a v4 artifact without
# the alloc_cache block, a v5 artifact without the dominance block, a
# v6 artifact without the serve block, or a v7 artifact without the
# corpus block) skips only the affected vs-baseline comparison, again
# with a note — older artifacts must never turn the gate red.
set -euo pipefail

prev=${1:?usage: bench_regression.sh PREV.json NEW.json}
new=${2:?usage: bench_regression.sh PREV.json NEW.json}
max_ratio="1.5"
min_gated_seconds="0.2"

[ -f "$new" ] || { echo "bench-regression: missing $new" >&2; exit 1; }

# field FILE KEY -> first numeric value of "KEY": NUM in FILE
field() {
    sed -n "s/.*\"$2\": \([0-9][0-9.]*\).*/\1/p" "$1" | head -1
}

# block_field FILE BLOCK KEY -> the numeric value of "KEY": NUM inside
# the "BLOCK": { ... } object. Needed since v5: scbd_cache and
# alloc_cache share their key names, so the file-wide first match of
# field() would silently read the wrong block.
block_field() {
    awk -v blk="\"$2\":" -v key="\"$3\":" '
        !in_block && index($0, blk) { in_block = 1; next }
        in_block && index($0, key) && match($0, /[0-9][0-9.]*/) {
            print substr($0, RSTART, RLENGTH); exit
        }
        in_block && index($0, "}") { exit }
    ' "$1"
}

# seconds FILE BINARY -> the binary's "seconds" value
seconds() {
    awk -v bin="\"$2\"" '
        index($0, bin) && match($0, /"seconds": [0-9.]+/) {
            print substr($0, RSTART + 11, RLENGTH - 11); exit
        }' "$1"
}

fail=0

# --- Nodes invariant (self-contained: no PREV needed). ----------------
solo=$(field "$new" solo)
pairwise=$(field "$new" pairwise)
if [ -n "$solo" ] && [ -n "$pairwise" ]; then
    if [ "$pairwise" -gt "$solo" ]; then
        echo "bench-regression: FAIL pairwise bound visits $pairwise nodes > solo $solo" >&2
        fail=1
    else
        echo "bench-regression: nodes ok (pairwise $pairwise <= solo $solo)"
    fi
else
    echo "bench-regression: FAIL $new lacks table4_nodes counters" >&2
    fail=1
fi

# --- Off-chip nodes invariant (self-contained). -----------------------
off_nodes=$(field "$new" bb_nodes)
off_exhaustive=$(field "$new" exhaustive_partitions)
if [ -n "$off_nodes" ] && [ -n "$off_exhaustive" ]; then
    # awk: the exhaustive counter can exceed bash's integer range on
    # huge off-chip instances (it saturates at 2^64 - 1).
    verdict=$(awk -v n="$off_nodes" -v e="$off_exhaustive" \
        'BEGIN { print (n + 0 < e + 0) ? "ok" : "inverted" }')
    if [ "$verdict" = "inverted" ]; then
        echo "bench-regression: FAIL off-chip bb nodes $off_nodes >= exhaustive partitions $off_exhaustive" >&2
        fail=1
    else
        echo "bench-regression: off-chip nodes ok ($off_nodes < exhaustive $off_exhaustive)"
    fi
else
    echo "bench-regression: FAIL $new lacks table4_off_chip counters" >&2
    fail=1
fi

# --- Dominance node-cut invariant (self-contained). -------------------
plateau_with=$(block_field "$new" dominance plateau_nodes_with)
plateau_without=$(block_field "$new" dominance plateau_nodes_without)
if [ -n "$plateau_with" ] && [ -n "$plateau_without" ]; then
    # awk: the no-dominance count can outgrow bash's integer range on
    # huge plateau instances.
    verdict=$(awk -v w="$plateau_with" -v wo="$plateau_without" \
        'BEGIN { print (w + 0 < wo + 0) ? "ok" : "inverted" }')
    if [ "$verdict" = "inverted" ]; then
        echo "bench-regression: FAIL plateau nodes with dominance $plateau_with >= without $plateau_without" >&2
        fail=1
    else
        echo "bench-regression: dominance cut ok (plateau nodes $plateau_with with < $plateau_without without)"
    fi
else
    echo "bench-regression: FAIL $new lacks dominance counters" >&2
    fail=1
fi
if [ -f "$prev" ] && [ -z "$(block_field "$prev" dominance plateau_nodes_with)" ]; then
    echo "bench-regression: previous artifact predates the dominance block (v5 schema); dominance gate is self-contained, nothing skipped"
fi

# --- Persistent-cache invariants (self-contained), per entry kind. ----
for kind in scbd alloc; do
    warm_hits=$(block_field "$new" "${kind}_cache" warm_hits)
    warm_misses=$(block_field "$new" "${kind}_cache" warm_misses)
    if [ -n "$warm_hits" ] && [ -n "$warm_misses" ]; then
        if [ "$warm_hits" -eq 0 ]; then
            echo "bench-regression: FAIL warm $kind cache run served no hits" >&2
            fail=1
        elif [ "$warm_misses" -ne 0 ]; then
            echo "bench-regression: FAIL warm $kind cache run still missed $warm_misses times" >&2
            fail=1
        else
            echo "bench-regression: $kind cache ok (warm hits $warm_hits, misses 0)"
        fi
    else
        echo "bench-regression: FAIL $new lacks ${kind}_cache counters" >&2
        fail=1
    fi
done
# The cache gates read only NEW; a v3 PREV (no scbd_cache block) or a
# v4 PREV (no alloc_cache block) therefore needs no comparison — note
# it for symmetry with the other schema-bump tolerances.
if [ -f "$prev" ] && [ -z "$(field "$prev" warm_hits)" ]; then
    echo "bench-regression: previous artifact predates scbd_cache (older schema); cache gate is self-contained, nothing skipped"
elif [ -f "$prev" ] && [ -z "$(block_field "$prev" alloc_cache warm_hits)" ]; then
    echo "bench-regression: previous artifact predates alloc_cache (v4 schema); cache gate is self-contained, nothing skipped"
fi

# --- Resident-daemon cache invariant (self-contained). ----------------
serve_warm_hits=$(block_field "$new" serve warm_hits)
serve_rows=$(block_field "$new" serve rows_streamed)
if [ -n "$serve_warm_hits" ] && [ -n "$serve_rows" ]; then
    if [ "$serve_warm_hits" -eq 0 ]; then
        echo "bench-regression: FAIL resident daemon's warm pass served no cache hits" >&2
        fail=1
    else
        echo "bench-regression: serve ok (warm hits $serve_warm_hits, rows streamed $serve_rows)"
    fi
else
    echo "bench-regression: FAIL $new lacks serve counters" >&2
    fail=1
fi
if [ -f "$prev" ] && [ -z "$(block_field "$prev" serve warm_hits)" ]; then
    echo "bench-regression: previous artifact predates the serve block (v6 schema); serve gate is self-contained, nothing skipped"
fi

# --- Workload-corpus invariant (self-contained). ----------------------
corpus_entries=$(block_field "$new" corpus entries)
corpus_warm_hits=$(block_field "$new" corpus warm_hits)
if [ -n "$corpus_entries" ] && [ -n "$corpus_warm_hits" ]; then
    if [ "$corpus_entries" -eq 0 ]; then
        echo "bench-regression: FAIL corpus run loaded no workloads" >&2
        fail=1
    elif [ "$corpus_warm_hits" -eq 0 ]; then
        echo "bench-regression: FAIL warm corpus run served no cache hits (text specs hash apart from Rust-built ones?)" >&2
        fail=1
    else
        echo "bench-regression: corpus ok ($corpus_entries entries, warm hits $corpus_warm_hits)"
    fi
else
    echo "bench-regression: FAIL $new lacks corpus counters" >&2
    fail=1
fi
if [ -f "$prev" ] && [ -z "$(block_field "$prev" corpus entries)" ]; then
    echo "bench-regression: previous artifact predates the corpus block (v7 schema); corpus gate is self-contained, nothing skipped"
fi

# --- Off-chip nodes vs the previous artifact. -------------------------
if [ ! -f "$prev" ]; then
    : # the wall-clock section below prints the missing-baseline note
elif prev_off=$(field "$prev" bb_nodes) && [ -n "$prev_off" ]; then
    verdict=$(awk -v o="$prev_off" -v c="$off_nodes" -v r="$max_ratio" \
        'BEGIN { print (c + 0 > o * r) ? "regressed" : "ok" }')
    if [ "$verdict" = "regressed" ]; then
        echo "bench-regression: FAIL off-chip nodes $off_nodes > ${max_ratio}x previous $prev_off" >&2
        fail=1
    else
        echo "bench-regression: off-chip nodes vs baseline ok ($prev_off -> $off_nodes)"
    fi
else
    echo "bench-regression: previous artifact predates table4_off_chip (older schema); skipping off-chip baseline comparison"
fi

# --- Wall-clock comparison against the previous artifact. --------------
if [ ! -f "$prev" ]; then
    echo "bench-regression: no previous baseline ($prev); skipping wall-clock gate"
else
    for bin in table3_cycle_budget table4_allocation codec_rd_sweep; do
        old=$(seconds "$prev" "$bin")
        cur=$(seconds "$new" "$bin")
        if [ -z "$old" ] || [ -z "$cur" ]; then
            echo "bench-regression: $bin missing from an artifact; skipping"
            continue
        fi
        # Both samples must clear the noise floor: a sub-floor baseline
        # is itself timer noise and would make the ratio meaningless.
        verdict=$(awk -v o="$old" -v c="$cur" -v r="$max_ratio" -v m="$min_gated_seconds" \
            'BEGIN { print (c >= m && o >= m && c > o * r) ? "regressed" : "ok" }')
        if [ "$verdict" = "regressed" ]; then
            echo "bench-regression: FAIL $bin ${cur}s > ${max_ratio}x previous ${old}s" >&2
            fail=1
        else
            echo "bench-regression: $bin ok (${old}s -> ${cur}s)"
        fi
    done
fi

exit $fail
