#!/usr/bin/env bash
# Smoke-runs every table/figure reproduction binary on tiny inputs
# (MEMX_SMOKE=1) so CI catches rot in the paper-reproduction entry points.
# Each binary must exit 0 and print something.
set -euo pipefail

cd "$(dirname "$0")/.."

# shellcheck source=scripts/binaries.sh
source scripts/binaries.sh

cargo build --release --package memx-bench --bins

export MEMX_SMOKE=1
status=0
for bin in "${BINARIES[@]}"; do
    printf 'smoke: %-28s ' "$bin"
    started=$(date +%s)
    if output=$("./target/release/$bin" 2>&1) && [ -n "$output" ]; then
        printf 'ok (%ss, %s lines)\n' "$(($(date +%s) - started))" "$(wc -l <<<"$output")"
    else
        printf 'FAILED\n%s\n' "$output"
        status=1
    fi
done
exit $status
