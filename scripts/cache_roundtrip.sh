#!/usr/bin/env bash
# Roundtrip of the persistent evaluation cache over the whole smoke
# suite, anchored to an *uncached* reference run of the current
# binaries:
#
#   0. run every binary WITHOUT a cache — the reference stdout;
#   1. run the suite with MEMX_CACHE_DIR set (this pass may be served
#      from a cache carried across CI runs — diffing it against the
#      fresh uncached reference is exactly what catches *stale* entries
#      surviving a schedule-affecting code change that forgot to bump
#      the cache revision);
#   2. run the suite again (warm): stdout must still match the
#      reference, and every binary that schedules must report *nonzero
#      cache hits*;
#   3. corrupt EVERY entry on disk (alternating truncation and garbage)
#      and re-run the full suite: the binaries must degrade to
#      recompute — exit 0, stdout unchanged — repairing the entries in
#      passing, which a final hit-check proves.
#
# MEMX_CACHE_DIR may be supplied by the caller (CI persists it across
# workflow runs via actions/cache); otherwise a throwaway directory is
# used and removed on exit.
set -euo pipefail

cd "$(dirname "$0")/.."

# shellcheck source=scripts/binaries.sh
source scripts/binaries.sh

# The binaries that run storage-cycle-budget distribution and must
# therefore *hit* on a warm cache. The others never schedule (their
# cache line always reads 0/0) and are only held to byte-identity.
SCHEDULING_BINARIES=(
    table1_structuring
    table2_hierarchy
    table3_cycle_budget
    table4_allocation
    fig1_methodology
    auto_hierarchy
    ablation_balancing
)

cargo build --release --package memx-bench --bins

export MEMX_SMOKE=1
throwaway_cache=""
if [ -n "${MEMX_CACHE_DIR:-}" ]; then
    mkdir -p "$MEMX_CACHE_DIR"
else
    MEMX_CACHE_DIR=$(mktemp -d)
    export MEMX_CACHE_DIR
    throwaway_cache=$MEMX_CACHE_DIR
fi
outdir=$(mktemp -d)
trap 'rm -rf "$outdir" $throwaway_cache' EXIT

# warm_hits STDERR-FILE -> the hits count of "[scbd cache: H hits / M misses]"
warm_hits() {
    sed -n 's|^\[scbd cache: \([0-9]*\) hits / [0-9]* misses\]$|\1|p' "$1" | head -1
}

# run_suite TAG [diff-reference-tag]  -> runs every binary, optionally
# diffing each stdout against a previous pass.
run_suite() {
    local tag=$1 ref=${2:-}
    local bin
    for bin in "${BINARIES[@]}"; do
        if ! "./target/release/$bin" >"$outdir/$bin.$tag" 2>"$outdir/$bin.$tag.err"; then
            echo "cache-roundtrip: FAIL $bin ($tag) exited non-zero" >&2
            status=1
            continue
        fi
        if [ -n "$ref" ]; then
            if diff -u "$outdir/$bin.$ref" "$outdir/$bin.$tag" >"$outdir/diff.txt"; then
                printf 'cache-roundtrip: %-28s %s == %s\n' "$bin" "$tag" "$ref"
            else
                echo "cache-roundtrip: FAIL $bin $tag stdout differs from $ref:" >&2
                cat "$outdir/diff.txt" >&2
                status=1
            fi
        fi
    done
}

status=0

echo "cache-roundtrip: cache dir $MEMX_CACHE_DIR"

# Pass 0: uncached reference (current binaries, no cache involved).
(
    unset MEMX_CACHE_DIR
    for bin in "${BINARIES[@]}"; do
        "./target/release/$bin" >"$outdir/$bin.uncached" 2>/dev/null ||
            { echo "cache-roundtrip: FAIL $bin (uncached) exited non-zero" >&2; exit 1; }
    done
) || status=1

# Pass 1: cached (cold, or warm from a CI-carried cache — either way it
# must match the uncached reference byte for byte).
run_suite cached uncached

# Pass 2: warm — byte-identity again, plus nonzero hits where it counts.
run_suite warm uncached
for bin in "${SCHEDULING_BINARIES[@]}"; do
    hits=$(warm_hits "$outdir/$bin.warm.err")
    if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
        echo "cache-roundtrip: FAIL $bin reported no cache hits on the warm run (got '${hits:-missing line}')" >&2
        status=1
    fi
done

# Pass 3: corrupt EVERY entry (deterministic — every schedule read in
# the next pass sees a corrupt file), re-run the whole suite, and prove
# the entries were repaired in passing.
entries=("$MEMX_CACHE_DIR"/scbd/*.bin)
if [ ! -e "${entries[0]}" ]; then
    echo "cache-roundtrip: FAIL no cache entries were written" >&2
    status=1
else
    i=0
    for entry in "${entries[@]}"; do
        if [ $((i % 2)) -eq 0 ]; then
            head -c 10 "$entry" >"$entry.tmp" && mv "$entry.tmp" "$entry"
        else
            printf 'not a cache entry' >"$entry"
        fi
        i=$((i + 1))
    done
    echo "cache-roundtrip: corrupted all ${#entries[@]} entries (truncation/garbage alternating)"
    run_suite corrupted uncached
    # The corrupted pass recomputed and re-published every schedule it
    # read; a final run must therefore hit again.
    hits_after_repair=$("./target/release/table4_allocation" 2>&1 >/dev/null | warm_hits /dev/stdin)
    if [ -z "$hits_after_repair" ] || [ "$hits_after_repair" -eq 0 ]; then
        echo "cache-roundtrip: FAIL corrupted entries were not repaired (table4 hits '$hits_after_repair')" >&2
        status=1
    else
        echo "cache-roundtrip: corrupted entries repaired ($hits_after_repair table4 hits after re-run)"
    fi
fi

exit $status
