#!/usr/bin/env bash
# Roundtrip of the persistent evaluation cache over the whole smoke
# suite, anchored to an *uncached* reference run of the current
# binaries:
#
#   0. run every binary WITHOUT a cache — the reference stdout;
#   1. run the suite with MEMX_CACHE_DIR set (this pass may be served
#      from a cache carried across CI runs — diffing it against the
#      fresh uncached reference is exactly what catches *stale* entries
#      surviving a schedule- or allocation-affecting code change that
#      forgot to bump the cache revision; per-key staleness semantics —
#      a model-constant change must re-key every entry — are pinned by
#      the scbd_stale_key_misses / alloc_stale_key_misses unit tests);
#   2. run the suite again (warm): stdout must still match the
#      reference, and every binary that schedules must report *nonzero
#      cache hits* on BOTH per-kind stat lines — schedules ([scbd
#      cache: ...]) and allocation solutions ([alloc cache: ...]);
#   3. corrupt EVERY entry on disk — all three kinds: scbd/, alloc/,
#      offblocks/ — alternating truncation and garbage, and re-run the
#      full suite: the binaries must degrade to recompute — exit 0,
#      stdout unchanged — repairing the entries in passing, which a
#      final per-kind hit-check proves.
#
# MEMX_CACHE_DIR may be supplied by the caller (CI persists it across
# workflow runs via actions/cache); otherwise a throwaway directory is
# used and removed on exit.
set -euo pipefail

cd "$(dirname "$0")/.."

# shellcheck source=scripts/binaries.sh
source scripts/binaries.sh

# The binaries that run storage-cycle-budget distribution and must
# therefore *hit* on a warm cache. The others never schedule (their
# cache line always reads 0/0) and are only held to byte-identity.
SCHEDULING_BINARIES=(
    table1_structuring
    table2_hierarchy
    table3_cycle_budget
    table4_allocation
    fig1_methodology
    auto_hierarchy
    ablation_balancing
    memx-corpus
)

cargo build --release --package memx-bench --bins

export MEMX_SMOKE=1
throwaway_cache=""
if [ -n "${MEMX_CACHE_DIR:-}" ]; then
    mkdir -p "$MEMX_CACHE_DIR"
else
    MEMX_CACHE_DIR=$(mktemp -d)
    export MEMX_CACHE_DIR
    throwaway_cache=$MEMX_CACHE_DIR
fi
outdir=$(mktemp -d)
trap 'rm -rf "$outdir" $throwaway_cache' EXIT

# warm_hits STDERR-FILE -> the hits count of "[scbd cache: H hits / M misses]"
warm_hits() {
    sed -n 's|^\[scbd cache: \([0-9]*\) hits / [0-9]* misses\]$|\1|p' "$1" | head -1
}

# alloc_warm_hits STDERR-FILE -> same, for "[alloc cache: H hits / M misses]"
alloc_warm_hits() {
    sed -n 's|^\[alloc cache: \([0-9]*\) hits / [0-9]* misses\]$|\1|p' "$1" | head -1
}

# run_suite TAG [diff-reference-tag]  -> runs every binary, optionally
# diffing each stdout against a previous pass.
run_suite() {
    local tag=$1 ref=${2:-}
    local bin
    for bin in "${BINARIES[@]}"; do
        if ! "./target/release/$bin" >"$outdir/$bin.$tag" 2>"$outdir/$bin.$tag.err"; then
            echo "cache-roundtrip: FAIL $bin ($tag) exited non-zero" >&2
            status=1
            continue
        fi
        if [ -n "$ref" ]; then
            if diff -u "$outdir/$bin.$ref" "$outdir/$bin.$tag" >"$outdir/diff.txt"; then
                printf 'cache-roundtrip: %-28s %s == %s\n' "$bin" "$tag" "$ref"
            else
                echo "cache-roundtrip: FAIL $bin $tag stdout differs from $ref:" >&2
                cat "$outdir/diff.txt" >&2
                status=1
            fi
        fi
    done
}

status=0

echo "cache-roundtrip: cache dir $MEMX_CACHE_DIR"

# Pass 0: uncached reference (current binaries, no cache involved).
(
    unset MEMX_CACHE_DIR
    for bin in "${BINARIES[@]}"; do
        "./target/release/$bin" >"$outdir/$bin.uncached" 2>/dev/null ||
            { echo "cache-roundtrip: FAIL $bin (uncached) exited non-zero" >&2; exit 1; }
    done
) || status=1

# Pass 1: cached (cold, or warm from a CI-carried cache — either way it
# must match the uncached reference byte for byte).
run_suite cached uncached

# Pass 2: warm — byte-identity again, plus nonzero hits where it
# counts, per entry kind: the schedule cache AND the allocation cache
# must both serve every scheduling binary. (The block-catalog line is
# deliberately not gated: a warm allocation hit short-circuits phase 2
# before the pricer ever consults the block cache, so 0/0 is its
# correct warm steady state.)
run_suite warm uncached
for bin in "${SCHEDULING_BINARIES[@]}"; do
    hits=$(warm_hits "$outdir/$bin.warm.err")
    if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
        echo "cache-roundtrip: FAIL $bin reported no scbd cache hits on the warm run (got '${hits:-missing line}')" >&2
        status=1
    fi
    hits=$(alloc_warm_hits "$outdir/$bin.warm.err")
    if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
        echo "cache-roundtrip: FAIL $bin reported no alloc cache hits on the warm run (got '${hits:-missing line}')" >&2
        status=1
    fi
done

# Pass 3: corrupt EVERY entry of every kind (deterministic — every
# schedule, allocation and block-catalog read in the next pass sees a
# corrupt file), re-run the whole suite, and prove the entries were
# repaired in passing.
for kind in scbd alloc offblocks; do
    kind_entries=("$MEMX_CACHE_DIR/$kind"/*.bin)
    if [ ! -e "${kind_entries[0]}" ]; then
        echo "cache-roundtrip: FAIL no $kind cache entries were written" >&2
        status=1
    fi
done
entries=("$MEMX_CACHE_DIR"/{scbd,alloc,offblocks}/*.bin)
if [ ! -e "${entries[0]}" ]; then
    echo "cache-roundtrip: FAIL no cache entries were written" >&2
    status=1
else
    i=0
    for entry in "${entries[@]}"; do
        # An empty kind leaves its unexpanded glob in the list (already
        # reported as a failure above); don't manufacture a file for it.
        if [ ! -e "$entry" ]; then continue; fi
        if [ $((i % 2)) -eq 0 ]; then
            head -c 10 "$entry" >"$entry.tmp" && mv "$entry.tmp" "$entry"
        else
            printf 'not a cache entry' >"$entry"
        fi
        i=$((i + 1))
    done
    echo "cache-roundtrip: corrupted all ${#entries[@]} entries (truncation/garbage alternating)"
    run_suite corrupted uncached
    # The corrupted pass recomputed and re-published every schedule and
    # allocation it read; a final run must therefore hit again, on both
    # gated kinds.
    "./target/release/table4_allocation" >/dev/null 2>"$outdir/repair.err"
    hits_after_repair=$(warm_hits "$outdir/repair.err")
    alloc_hits_after_repair=$(alloc_warm_hits "$outdir/repair.err")
    if [ -z "$hits_after_repair" ] || [ "$hits_after_repair" -eq 0 ]; then
        echo "cache-roundtrip: FAIL corrupted scbd entries were not repaired (table4 hits '$hits_after_repair')" >&2
        status=1
    elif [ -z "$alloc_hits_after_repair" ] || [ "$alloc_hits_after_repair" -eq 0 ]; then
        echo "cache-roundtrip: FAIL corrupted alloc entries were not repaired (table4 alloc hits '$alloc_hits_after_repair')" >&2
        status=1
    else
        echo "cache-roundtrip: corrupted entries repaired ($hits_after_repair scbd / $alloc_hits_after_repair alloc table4 hits after re-run)"
    fi
fi

exit $status
