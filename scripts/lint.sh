#!/usr/bin/env bash
# Workspace invariant lint: builds memx-lint and runs it over crates/
# and src/. Exits nonzero on any unsuppressed finding — same gate CI
# applies. See crates/xlint/src/lib.rs for the five lints and the
# suppression syntax.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo run -p xlint --release --quiet -- --workspace
