#!/usr/bin/env bash
# Sharded design-space sweep: partitions the paper-reproduction suite by
# binary index across N concurrent processes that share ONE persistent
# evaluation cache directory, then merges the per-shard outputs back
# into suite order and proves the merge is byte-identical to a plain
# 1-process run.
#
#   scripts/sharded_sweep.sh [SHARDS]      (default: 2)
#
# Three passes:
#
#   0. reference — every binary once, single process, NO cache: the
#      stdout a sharded run must reproduce exactly;
#   1. cold      — N background shards (shard s runs the binaries whose
#      index satisfies index % N == s) against the shared store, filling
#      scbd/alloc/offblocks entries concurrently (the atomic-rename
#      discipline is what makes one directory safe to share);
#   2. warm      — same shards again: merged stdout must still match the
#      reference, and every shard must report nonzero *allocation*-cache
#      hits on its stderr, proving phase-2 short-circuiting works under
#      sharding, not just single-process.
#
# Each warm shard also emits a BENCH_shard<s>.json fragment (per-binary
# wall-clock + the shard's alloc-cache warm counters); the fragments are
# merged into BENCH_sharded.json in shard order. Merge semantics are
# deliberately dumb: fragments are disjoint by construction (a binary
# belongs to exactly one shard), so the merge is pure concatenation — no
# counter is ever summed across shards.
#
# MEMX_SWEEP_CACHE_DIR may point at a persistent store (CI passes the
# actions-cache-carried .memx-cache); otherwise a throwaway directory is
# used and removed on exit.
set -euo pipefail

cd "$(dirname "$0")/.."

# shellcheck source=scripts/binaries.sh
source scripts/binaries.sh

shards=${1:-2}
if [ "$shards" -lt 1 ] || [ "$shards" -gt "${#BINARIES[@]}" ]; then
    echo "sharded-sweep: SHARDS must be in 1..${#BINARIES[@]} (got $shards)" >&2
    exit 1
fi

cargo build --release --package memx-bench --bins

export MEMX_SMOKE=1
throwaway_cache=""
if [ -n "${MEMX_SWEEP_CACHE_DIR:-}" ]; then
    cachedir=$MEMX_SWEEP_CACHE_DIR
    mkdir -p "$cachedir"
else
    cachedir=$(mktemp -d)
    throwaway_cache=$cachedir
fi
outdir=$(mktemp -d)
trap 'rm -rf "$outdir" $throwaway_cache' EXIT

now_ns() { date +%s%N; }

# alloc_hits STDERR-FILE -> the hits count of "[alloc cache: H hits / M misses]"
alloc_hits() {
    sed -n 's|^\[alloc cache: \([0-9]*\) hits / [0-9]* misses\]$|\1|p' "$1" | head -1
}

# run_shard PASS SHARD -> runs this shard's slice of the suite against
# the shared cache; on the warm pass, also writes the shard's BENCH
# fragment. Runs in a background subshell — failures surface via a
# marker file because a backgrounded exit status alone is easy to lose.
run_shard() {
    local pass=$1 shard=$2
    local idx=0 bin started secs entries="" hits shard_hits=0
    for bin in "${BINARIES[@]}"; do
        if [ $((idx % shards)) -eq "$shard" ]; then
            started=$(now_ns)
            if ! MEMX_CACHE_DIR=$cachedir "./target/release/$bin" \
                >"$outdir/$bin.$pass" 2>"$outdir/$bin.$pass.err"; then
                echo "sharded-sweep: FAIL $bin ($pass, shard $shard) exited non-zero" >&2
                touch "$outdir/failed.$pass.$shard"
                return 1
            fi
            secs=$(awk -v s="$started" -v e="$(now_ns)" \
                'BEGIN { printf "%.3f", (e - s) / 1e9 }')
            entries+=$(printf '      "%s": { "seconds": %s },' "$bin" "$secs")$'\n'
            if [ "$pass" = warm ]; then
                hits=$(alloc_hits "$outdir/$bin.$pass.err")
                shard_hits=$((shard_hits + ${hits:-0}))
            fi
        fi
        idx=$((idx + 1))
    done
    if [ "$pass" = warm ]; then
        cat > "$outdir/BENCH_shard$shard.json" << EOF
    {
      "shard": $shard,
      "binaries": {
${entries%,$'\n'}
      },
      "alloc_cache": { "warm_hits": $shard_hits }
    }
EOF
    fi
}

# merge PASS -> the shard stdouts concatenated back into suite order
# (the canonical BINARIES order, which is what a 1-process run prints).
merge() {
    local pass=$1 bin
    for bin in "${BINARIES[@]}"; do
        cat "$outdir/$bin.$pass"
    done
}

status=0
echo "sharded-sweep: $shards shards over ${#BINARIES[@]} binaries, cache $cachedir"

# Pass 0: 1-process uncached reference.
for bin in "${BINARIES[@]}"; do
    "./target/release/$bin" >"$outdir/$bin.ref" 2>/dev/null ||
        { echo "sharded-sweep: FAIL $bin (reference) exited non-zero" >&2; exit 1; }
done
merge ref >"$outdir/merged.ref"

# Passes 1 (cold) and 2 (warm): N concurrent shards, one shared store.
for pass in cold warm; do
    for shard in $(seq 0 $((shards - 1))); do
        run_shard "$pass" "$shard" &
    done
    wait
    for shard in $(seq 0 $((shards - 1))); do
        if [ -e "$outdir/failed.$pass.$shard" ]; then status=1; fi
    done
    if [ "$status" -ne 0 ]; then exit "$status"; fi
    merge "$pass" >"$outdir/merged.$pass"
    if diff -u "$outdir/merged.ref" "$outdir/merged.$pass" >"$outdir/diff.txt"; then
        echo "sharded-sweep: $pass merge == 1-process reference (byte-identical)"
    else
        echo "sharded-sweep: FAIL $pass merge differs from the 1-process reference:" >&2
        cat "$outdir/diff.txt" >&2
        status=1
    fi
done

# Every warm shard must have been served from the allocation cache.
for shard in $(seq 0 $((shards - 1))); do
    hits=$(sed -n 's/.*"warm_hits": \([0-9]*\).*/\1/p' "$outdir/BENCH_shard$shard.json" | head -1)
    if [ -z "$hits" ] || [ "$hits" -eq 0 ]; then
        echo "sharded-sweep: FAIL shard $shard reported no alloc-cache hits on the warm pass" >&2
        status=1
    else
        echo "sharded-sweep: shard $shard warm alloc-cache hits: $hits"
    fi
done

# Merge the per-shard BENCH fragments (disjoint by construction).
{
    printf '{\n  "schema": "memexplore-sharded-sweep-v1",\n'
    printf '  "shards": %s,\n  "merged": [\n' "$shards"
    for shard in $(seq 0 $((shards - 1))); do
        cat "$outdir/BENCH_shard$shard.json"
        if [ "$shard" -lt $((shards - 1)) ]; then printf ',\n'; fi
    done
    printf '  ]\n}\n'
} > BENCH_sharded.json
echo "sharded-sweep: wrote BENCH_sharded.json"

exit $status
