# The paper-reproduction binaries every end-to-end script drives.
# Sourced by scripts/smoke.sh and scripts/determinism_matrix.sh so the
# two suites can never silently diverge: a new table/figure binary added
# here is smoke-tested *and* determinism-checked in CI.
BINARIES=(
    table1_structuring
    table2_hierarchy
    table3_cycle_budget
    table4_allocation
    fig1_methodology
    fig2_structuring_semantics
    fig3_hierarchy_chain
    codec_rd_sweep
    auto_hierarchy
    ablation_balancing
    plateau_dominance
    memx-corpus
)

# The resident daemon is deliberately NOT in BINARIES: every harness
# above expects a terminating process, while memx-serve runs until
# killed. scripts/serve_smoke.sh drives it (boot, scripted client
# passes, kill) and CI runs that as its own job.
SERVE_BINARY=memx-serve
SERVE_CLIENT=serve_client
