#!/usr/bin/env bash
# Times the exploration binaries and emits BENCH_explore.json so the
# engine's perf trajectory is tracked run over run (CI uploads it as an
# artifact). Honors MEMX_SMOKE=1 for CI-sized inputs.
#
# The table4 allocation sweep is timed twice — fully serial
# (MEMX_WORKERS=1) and one worker per core (MEMX_WORKERS=0) — and the
# wall-clock speedup is reported. The two runs print bit-identical
# tables; only the wall-clock differs, and only on multi-core hosts.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_explore.json}"
BINARIES=(table3_cycle_budget table4_allocation codec_rd_sweep)

cargo build --release --package memx-bench --bins

now_ns() { date +%s%N; }

# run_secs BINARY [ENV=VAL...] -> wall-clock seconds on stdout
run_secs() {
    local bin=$1
    shift
    local start end
    start=$(now_ns)
    env "$@" "./target/release/$bin" >/dev/null 2>&1
    end=$(now_ns)
    awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }'
}

cores=$(nproc 2>/dev/null || echo 1)
smoke=false
if [ -n "${MEMX_SMOKE:-}" ] && [ "${MEMX_SMOKE}" != "0" ]; then
    smoke=true
fi

entries=""
for bin in "${BINARIES[@]}"; do
    secs=$(run_secs "$bin")
    printf 'bench: %-28s %ss\n' "$bin" "$secs"
    entries+=$(printf '    "%s": { "seconds": %s },' "$bin" "$secs")$'\n'
done

t4_serial=$(run_secs table4_allocation MEMX_WORKERS=1)
t4_parallel=$(run_secs table4_allocation MEMX_WORKERS=0)
speedup=$(awk -v s="$t4_serial" -v p="$t4_parallel" \
    'BEGIN { if (p > 0) printf "%.2f", s / p; else printf "1.00" }')
printf 'bench: table4 serial %ss / parallel %ss -> speedup %sx on %s core(s)\n' \
    "$t4_serial" "$t4_parallel" "$speedup" "$cores"

cat > "$OUT" << EOF
{
  "schema": "memexplore-bench-v1",
  "generated_unix": $(date +%s),
  "smoke": $smoke,
  "cores": $cores,
  "binaries": {
${entries%,$'\n'}
  },
  "table4_speedup": {
    "serial_seconds": $t4_serial,
    "parallel_seconds": $t4_parallel,
    "speedup": $speedup,
    "workers": $cores
  }
}
EOF
echo "wrote $OUT"
