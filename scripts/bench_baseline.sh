#!/usr/bin/env bash
# Times the exploration binaries and emits BENCH_explore.json so the
# engine's perf trajectory is tracked run over run (CI uploads it as an
# artifact and gates regressions with scripts/bench_regression.sh).
# Honors MEMX_SMOKE=1 for CI-sized inputs.
#
# The table4 allocation sweep is timed twice — fully serial
# (MEMX_WORKERS=1) and one worker per core (MEMX_WORKERS=0) — and the
# wall-clock speedup is reported (best of two runs each, to damp timer
# noise on sub-second binaries). The two runs print bit-identical
# tables; only the wall-clock differs, and only on multi-core hosts.
#
# The table4 branch-and-bound is additionally run once per lower bound
# (MEMX_BOUND=solo / pairwise) with a raised node limit, recording the
# nodes-visited counters: with an unexhausted budget the node count
# measures pruning power, and the pairwise-conflict bound must not lose
# to the solo baseline.
#
# The same pinned-serial table4 run also records the *off-chip*
# branch-and-bound counters: nodes expanded versus the Bell-number
# partition space the retired exhaustive enumeration had to stream
# through. scripts/bench_regression.sh gates nodes < exhaustive.
#
# The v4 schema additionally records the persistent evaluation cache's
# hit/miss counters from a cold and a warm table3 run against a
# throwaway cache directory: scripts/bench_regression.sh gates
# warm_hits > 0 (the cache must actually serve) and warm_misses == 0
# (a warm cache must be complete for an unchanged binary).
#
# The v5 schema splits the counters per entry kind: the same cold/warm
# table3 pair also records the *allocation*-cache block (alloc_cache),
# gated identically — a warm run must short-circuit every phase-2
# branch-and-bound from the cache, not just every schedule.
#
# The v6 schema adds the symmetric-group dominance block: the table4
# sweep's dominance-cut counter, plus the plateau_dominance binary's
# off-chip node count with and without the rule (MEMX_DOMINANCE on/off,
# pinned serial). The instance is a pure tie plateau, so the lower
# bound alone prunes nothing there and the with/without ratio isolates
# the dominance rule's contribution. scripts/bench_regression.sh gates
# nodes-with < nodes-without self-contained.
#
# The v7 schema adds the resident-daemon block (serve): memx-serve is
# booted on loopback with a throwaway cache and driven through a cold
# and a warm demo batch by the scripted client; the block records the
# warm pass's cache hits (from the response trailers) plus the daemon's
# cumulative rows_streamed / rejected_requests counters (from
# /v1/stats). scripts/bench_regression.sh gates warm_hits > 0 — the
# resident cache must actually serve the second pass.
#
# The v8 schema adds the workload-corpus block (corpus): memx-corpus
# parses every corpus/*.mxspec entry through the textual front-end,
# proves the print/parse round-trip and evaluates each workload, run
# cold then warm against a throwaway cache. The block records the
# entry count plus the warm pass's scbd cache hits/misses;
# scripts/bench_regression.sh gates entries > 0 and warm_hits > 0 —
# text-loaded specs must hash onto the same cache keys as Rust-built
# ones, or the warm pass would miss.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${BENCH_OUT:-BENCH_explore.json}"
BINARIES=(table3_cycle_budget table4_allocation codec_rd_sweep)
# Unexhausted node budget for the bound comparison (see header).
NODES_LIMIT=100000000

cargo build --release --package memx-bench --package memx-serve --bins

now_ns() { date +%s%N; }

# run_secs BINARY [ENV=VAL...] -> wall-clock seconds on stdout
run_secs() {
    local bin=$1
    shift
    local start end
    start=$(now_ns)
    env "$@" "./target/release/$bin" >/dev/null 2>&1
    end=$(now_ns)
    awk -v s="$start" -v e="$end" 'BEGIN { printf "%.3f", (e - s) / 1e9 }'
}

# run_secs_best BINARY [ENV=VAL...] -> best of two runs
run_secs_best() {
    local a b
    a=$(run_secs "$@")
    b=$(run_secs "$@")
    awk -v a="$a" -v b="$b" 'BEGIN { printf "%.3f", (a < b) ? a : b }'
}

# table4_stderr BOUND -> the full stderr of a pinned-serial table4 run.
# Pinned to one worker: parallel runs skip subtrees on thread timing, so
# only the serial node counters are deterministic enough to gate on.
table4_stderr() {
    env MEMX_BOUND="$1" MEMX_NODE_LIMIT="$NODES_LIMIT" MEMX_WORKERS=1 \
        ./target/release/table4_allocation 2>&1 >/dev/null
}

# stat_line STDERR LABEL -> the numeric value of "[LABEL: N]"
stat_line() {
    sed -n "s/^\[$2: \([0-9]*\)\]\$/\1/p" <<<"$1" | head -1
}

# cache_hits/cache_misses STDERR KIND -> the fields of
# "[KIND cache: H hits / M misses]" (KIND: scbd or alloc)
cache_hits() {
    sed -n "s|^\[$2 cache: \([0-9]*\) hits / [0-9]* misses\]\$|\1|p" <<<"$1" | head -1
}
cache_misses() {
    sed -n "s|^\[$2 cache: [0-9]* hits / \([0-9]*\) misses\]\$|\1|p" <<<"$1" | head -1
}

cores=$(nproc 2>/dev/null || echo 1)
smoke=false
if [ -n "${MEMX_SMOKE:-}" ] && [ "${MEMX_SMOKE}" != "0" ]; then
    smoke=true
fi

entries=""
for bin in "${BINARIES[@]}"; do
    secs=$(run_secs "$bin")
    printf 'bench: %-28s %ss\n' "$bin" "$secs"
    entries+=$(printf '    "%s": { "seconds": %s },' "$bin" "$secs")$'\n'
done

t4_serial=$(run_secs_best table4_allocation MEMX_WORKERS=1)
t4_parallel=$(run_secs_best table4_allocation MEMX_WORKERS=0)
speedup=$(awk -v s="$t4_serial" -v p="$t4_parallel" \
    'BEGIN { if (p > 0) printf "%.2f", s / p; else printf "1.00" }')
printf 'bench: table4 serial %ss / parallel %ss -> speedup %sx on %s core(s)\n' \
    "$t4_serial" "$t4_parallel" "$speedup" "$cores"

# Cold/warm cache counters (table3: the most cache-active binary —
# its crossover probe plus the sweep distribute dozens of schedules).
cache_dir=$(mktemp -d)
serve_dir=$(mktemp -d)
corpus_dir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$cache_dir" "$serve_dir" "$corpus_dir"
}
trap cleanup EXIT
stderr_cold=$(env MEMX_CACHE_DIR="$cache_dir" MEMX_WORKERS=1 \
    ./target/release/table3_cycle_budget 2>&1 >/dev/null)
stderr_warm=$(env MEMX_CACHE_DIR="$cache_dir" MEMX_WORKERS=1 \
    ./target/release/table3_cycle_budget 2>&1 >/dev/null)
cold_misses=$(cache_misses "$stderr_cold" scbd)
warm_hits=$(cache_hits "$stderr_warm" scbd)
warm_misses=$(cache_misses "$stderr_warm" scbd)
printf 'bench: scbd cache cold %s misses -> warm %s hits / %s misses\n' \
    "$cold_misses" "$warm_hits" "$warm_misses"
alloc_cold_misses=$(cache_misses "$stderr_cold" alloc)
alloc_warm_hits=$(cache_hits "$stderr_warm" alloc)
alloc_warm_misses=$(cache_misses "$stderr_warm" alloc)
printf 'bench: alloc cache cold %s misses -> warm %s hits / %s misses\n' \
    "$alloc_cold_misses" "$alloc_warm_hits" "$alloc_warm_misses"

stderr_solo=$(table4_stderr solo)
stderr_pairwise=$(table4_stderr pairwise)
nodes_solo=$(stat_line "$stderr_solo" "alloc nodes")
nodes_pairwise=$(stat_line "$stderr_pairwise" "alloc nodes")
off_nodes=$(stat_line "$stderr_pairwise" "off-chip nodes")
off_exhaustive=$(stat_line "$stderr_pairwise" "off-chip exhaustive")
table4_cuts=$(stat_line "$stderr_pairwise" "off-chip dominance cuts")
printf 'bench: table4 nodes visited (exact search): solo %s / pairwise %s\n' \
    "$nodes_solo" "$nodes_pairwise"
printf 'bench: table4 off-chip nodes %s vs exhaustive partitions %s\n' \
    "$off_nodes" "$off_exhaustive"
printf 'bench: table4 off-chip dominance cuts %s\n' "$table4_cuts"

# Tie-plateau dominance counters: the plateau_dominance binary, pinned
# serial, with the rule on (default) and off. Same stdout either way —
# only the search-effort counters move.
stderr_plateau_on=$(env MEMX_WORKERS=1 \
    ./target/release/plateau_dominance 2>&1 >/dev/null)
stderr_plateau_off=$(env MEMX_DOMINANCE=0 MEMX_WORKERS=1 \
    ./target/release/plateau_dominance 2>&1 >/dev/null)
plateau_nodes_with=$(stat_line "$stderr_plateau_on" "off-chip nodes")
plateau_nodes_without=$(stat_line "$stderr_plateau_off" "off-chip nodes")
plateau_cuts=$(stat_line "$stderr_plateau_on" "off-chip dominance cuts")
printf 'bench: plateau off-chip nodes with dominance %s / without %s (cuts %s)\n' \
    "$plateau_nodes_with" "$plateau_nodes_without" "$plateau_cuts"

# Workload-corpus counters: cold/warm memx-corpus against a throwaway
# cache. The warm pass hitting proves text-parsed specs share content
# hashes (and so cache keys) with Rust-built ones.
stderr_corpus_cold=$(env MEMX_CACHE_DIR="$corpus_dir/cache" MEMX_WORKERS=1 \
    ./target/release/memx-corpus 2>&1 >/dev/null)
corpus_out=$(env MEMX_CACHE_DIR="$corpus_dir/cache" MEMX_WORKERS=1 \
    ./target/release/memx-corpus 2>"$corpus_dir/warm.err")
stderr_corpus_warm=$(cat "$corpus_dir/warm.err")
corpus_entries=$(sed -n 's/^corpus workloads: \([0-9]*\).*/\1/p' <<<"$corpus_out")
corpus_cold_misses=$(cache_misses "$stderr_corpus_cold" scbd)
corpus_warm_hits=$(cache_hits "$stderr_corpus_warm" scbd)
corpus_warm_misses=$(cache_misses "$stderr_corpus_warm" scbd)
printf 'bench: corpus %s entries, scbd cache cold %s misses -> warm %s hits / %s misses\n' \
    "$corpus_entries" "$corpus_cold_misses" "$corpus_warm_hits" "$corpus_warm_misses"

# Resident-daemon counters: boot memx-serve with a throwaway cache,
# drive the demo batch cold then warm, read the warm pass's cache-hit
# trailers and the daemon's cumulative /v1/stats counters.
./target/release/memx-serve --addr 127.0.0.1:0 \
    --cache-dir "$serve_dir/cache" > "$serve_dir/serve.log" &
serve_pid=$!
serve_addr=""
for _ in $(seq 1 50); do
    serve_addr=$(sed -n 's/^memx-serve listening on //p' "$serve_dir/serve.log")
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
[ -n "$serve_addr" ] || { echo "bench: memx-serve never came up" >&2; exit 1; }
./target/release/serve_client demo > "$serve_dir/request.json"
./target/release/serve_client evaluate "$serve_addr" \
    < "$serve_dir/request.json" > /dev/null 2> "$serve_dir/cold.trailers"
./target/release/serve_client evaluate "$serve_addr" \
    < "$serve_dir/request.json" > /dev/null 2> "$serve_dir/warm.trailers"
serve_warm_hits=$(sed -n 's/^x-memx-cache-[a-z]*: \([0-9]*\) hits.*/\1/p' \
    "$serve_dir/warm.trailers" | awk '{ s += $1 } END { print s + 0 }')
sleep 0.2
serve_stats=$(./target/release/serve_client stats "$serve_addr")
serve_rows=$(sed -n 's/.*"rows_streamed":\([0-9]*\).*/\1/p' <<<"$serve_stats")
serve_rejected=$(sed -n 's/.*"rejected_requests":\([0-9]*\).*/\1/p' <<<"$serve_stats")
kill "$serve_pid" 2>/dev/null || true
serve_pid=""
printf 'bench: serve warm hits %s, rows streamed %s, rejected %s\n' \
    "$serve_warm_hits" "$serve_rows" "$serve_rejected"

cat > "$OUT" << EOF
{
  "schema": "memexplore-bench-v8",
  "generated_unix": $(date +%s),
  "smoke": $smoke,
  "cores": $cores,
  "binaries": {
${entries%,$'\n'}
  },
  "table4_speedup": {
    "serial_seconds": $t4_serial,
    "parallel_seconds": $t4_parallel,
    "speedup": $speedup,
    "workers": $cores
  },
  "table4_nodes": {
    "solo": $nodes_solo,
    "pairwise": $nodes_pairwise
  },
  "table4_off_chip": {
    "bb_nodes": $off_nodes,
    "exhaustive_partitions": $off_exhaustive
  },
  "dominance": {
    "table4_dominance_cuts": $table4_cuts,
    "plateau_nodes_with": $plateau_nodes_with,
    "plateau_nodes_without": $plateau_nodes_without,
    "plateau_cuts": $plateau_cuts
  },
  "scbd_cache": {
    "cold_misses": $cold_misses,
    "warm_hits": $warm_hits,
    "warm_misses": $warm_misses
  },
  "alloc_cache": {
    "cold_misses": $alloc_cold_misses,
    "warm_hits": $alloc_warm_hits,
    "warm_misses": $alloc_warm_misses
  },
  "serve": {
    "warm_hits": $serve_warm_hits,
    "rows_streamed": $serve_rows,
    "rejected_requests": $serve_rejected
  },
  "corpus": {
    "entries": $corpus_entries,
    "cold_misses": $corpus_cold_misses,
    "warm_hits": $corpus_warm_hits,
    "warm_misses": $corpus_warm_misses
  }
}
EOF
echo "wrote $OUT"
