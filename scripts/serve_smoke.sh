#!/usr/bin/env bash
# End-to-end smoke of the resident daemon: self-drive first (in-process
# client, byte-diff against the offline reference), then a real boot on
# loopback driven by the scripted client — cold pass, warm pass (rows
# must stay byte-identical and the warm pass must report cache hits),
# stats endpoint, daemon killed on exit either way.
set -euo pipefail

cd "$(dirname "$0")/.."

# shellcheck source=scripts/binaries.sh
source scripts/binaries.sh

cargo build --release --package memx-serve --package memx-bench --bins

workdir=$(mktemp -d)
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "serve-smoke: self-drive"
"./target/release/$SERVE_BINARY" --self-drive

echo "serve-smoke: booting daemon"
"./target/release/$SERVE_BINARY" --addr 127.0.0.1:0 \
    --cache-dir "$workdir/cache" > "$workdir/serve.log" &
serve_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^memx-serve listening on //p' "$workdir/serve.log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { cat "$workdir/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve-smoke: daemon never reported its address"; exit 1; }
echo "serve-smoke: daemon at $addr"

"./target/release/$SERVE_CLIENT" demo > "$workdir/request.json"
"./target/release/$SERVE_CLIENT" offline < "$workdir/request.json" > "$workdir/offline.rows"

"./target/release/$SERVE_CLIENT" evaluate "$addr" \
    < "$workdir/request.json" > "$workdir/cold.rows" 2> "$workdir/cold.trailers"
diff -u "$workdir/offline.rows" "$workdir/cold.rows" \
    || { echo "serve-smoke: cold rows differ from offline reference"; exit 1; }
echo "serve-smoke: cold rows byte-identical ($(wc -l < "$workdir/cold.rows") rows)"

"./target/release/$SERVE_CLIENT" evaluate "$addr" \
    < "$workdir/request.json" > "$workdir/warm.rows" 2> "$workdir/warm.trailers"
diff -u "$workdir/offline.rows" "$workdir/warm.rows" \
    || { echo "serve-smoke: warm rows differ from offline reference"; exit 1; }

warm_hits=$(sed -n 's/^x-memx-cache-[a-z]*: \([0-9]*\) hits.*/\1/p' \
    "$workdir/warm.trailers" | awk '{ s += $1 } END { print s + 0 }')
if [ "$warm_hits" -eq 0 ]; then
    echo "serve-smoke: warm pass reported zero cache hits"
    cat "$workdir/warm.trailers"
    exit 1
fi
echo "serve-smoke: warm rows byte-identical, $warm_hits cache hits"

# The request counter is bumped just after the response finishes on the
# wire; give the handler a beat before reading it.
sleep 0.2
stats=$("./target/release/$SERVE_CLIENT" stats "$addr")
echo "serve-smoke: stats $stats"
grep -q '"requests":2' <<<"$stats" \
    || { echo "serve-smoke: stats did not count 2 requests"; exit 1; }

echo "serve-smoke: ok"
