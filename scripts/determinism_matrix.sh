#!/usr/bin/env bash
# Determinism matrix over the paper-reproduction binaries: runs the
# whole smoke suite under MEMX_WORKERS in {1, 2, 8} x MEMX_BOUND in
# {pairwise, solo} and diffs stdout against the fully-serial run of the
# same bound. The solver's bit-identical-per-worker-count guarantee is
# thereby enforced end-to-end in CI, not only in unit tests.
#
# The two bounds each get their own serial reference: with an exhausted
# smoke-sized node budget the two (equally admissible) bounds may keep
# different incumbents, so outputs are only required to be identical
# *per worker count within a bound* — which is exactly the guarantee
# the solver makes.
#
# Stdout only: stderr carries the worker-count banner and (in parallel
# runs) timing-dependent node counters, which are documented as
# non-deterministic.
#
# The persistent evaluation cache is folded into the same matrix: every
# (bound, workers) cell is re-run with MEMX_CACHE_DIR pointing at one
# shared cache directory, and the cached stdout must diff clean against
# the uncached run of the same cell. The shared directory is *cold* for
# the first cell and warm for every later one, so both fill and serve
# paths are pinned to byte-identity end-to-end — for all three entry
# kinds: a warm cell's allocations are served whole from the alloc
# cache (keyed without the worker count, exactly because this matrix
# holds), short-circuiting the phase-2 branch-and-bound the uncached
# cell ran.
set -euo pipefail

cd "$(dirname "$0")/.."

# shellcheck source=scripts/binaries.sh
source scripts/binaries.sh

cargo build --release --package memx-bench --bins

export MEMX_SMOKE=1
outdir=$(mktemp -d)
trap 'rm -rf "$outdir"' EXIT

status=0
for bound in pairwise solo; do
    for workers in 1 2 8; do
        for bin in "${BINARIES[@]}"; do
            if ! MEMX_BOUND=$bound MEMX_WORKERS=$workers \
                "./target/release/$bin" >"$outdir/$bin.$bound.$workers" 2>/dev/null; then
                echo "determinism: FAIL $bin (bound=$bound workers=$workers) exited non-zero" >&2
                status=1
            fi
        done
    done
    for workers in 2 8; do
        for bin in "${BINARIES[@]}"; do
            if diff -u "$outdir/$bin.$bound.1" "$outdir/$bin.$bound.$workers" >"$outdir/diff.txt"; then
                printf 'determinism: %-28s bound=%-8s workers=%s == serial\n' \
                    "$bin" "$bound" "$workers"
            else
                echo "determinism: FAIL $bin (bound=$bound) differs between workers=1 and workers=$workers:" >&2
                cat "$outdir/diff.txt" >&2
                status=1
            fi
        done
    done
done

# --- cached vs uncached: same matrix, one shared cache directory. ------
cachedir="$outdir/evalcache"
for bound in pairwise solo; do
    for workers in 1 2 8; do
        for bin in "${BINARIES[@]}"; do
            if ! MEMX_BOUND=$bound MEMX_WORKERS=$workers MEMX_CACHE_DIR=$cachedir \
                "./target/release/$bin" >"$outdir/$bin.$bound.$workers.cached" 2>/dev/null; then
                echo "determinism: FAIL $bin (bound=$bound workers=$workers cached) exited non-zero" >&2
                status=1
                continue
            fi
            if diff -u "$outdir/$bin.$bound.$workers" "$outdir/$bin.$bound.$workers.cached" \
                >"$outdir/diff.txt"; then
                printf 'determinism: %-28s bound=%-8s workers=%s cached == uncached\n' \
                    "$bin" "$bound" "$workers"
            else
                echo "determinism: FAIL $bin (bound=$bound workers=$workers) cached differs from uncached:" >&2
                cat "$outdir/diff.txt" >&2
                status=1
            fi
        done
    done
done
exit $status
